"""Cost-based routing: the cheapest covering MV, else a log scan.

The planner enumerates every route that can answer a query *exactly*
and prices each one in "entries touched":

* a covering materialized view costs the number of materialized entries
  the answer reads — 1 for an exact-key lookup, the group count for a
  breakdown;
* a log scan costs the number of records it must visit — the whole log,
  or just one user's records when the query filters on ``uid`` (the
  per-user offset index makes that an indexed scan, not a full pass).

The cheapest route wins (ties prefer the materialized answer, which
never touches the log). Every executed query carries a
:class:`QueryPlan` — the chosen route, its estimated cost, every
candidate considered, and the materialized answer's staleness in
records — so a dashboard result is always auditable back to how it was
produced. The scan executor doubles as the reference semantics: any
covered MV answer must equal what the scan over the same prefix would
say, which is exactly what :mod:`repro.analytics.integrity` replays.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.query import AnalyticsQuery, AnalyticsResult, finalize
from repro.common.errors import ValidationError

#: Route names for the two scan flavors (MV routes are ``mv:<view>``).
ROUTE_SCAN = "scan"
ROUTE_USER_INDEX = "scan:user-index"


@dataclass(frozen=True)
class QueryPlan:
    """How one query was (or would be) executed."""

    route: str
    estimated_cost: float
    #: every route considered, as ``(route, estimated_cost)`` pairs.
    candidates: tuple
    #: records the chosen MV lagged the live log by at plan time
    #: (0 for scans and for inline-maintained views).
    staleness_records: int = 0

    @property
    def materialized(self) -> bool:
        """Whether the chosen route is a materialized view."""
        return self.route.startswith("mv:")

    def payload(self) -> dict:
        """The wire-facing provenance dict."""
        return {
            "route": self.route,
            "estimated_cost": self.estimated_cost,
            "candidates": [[route, cost] for route, cost in self.candidates],
            "staleness_records": self.staleness_records,
        }


def execute_scan(log, query: AnalyticsQuery, window_width: int):
    """The fallback (and reference) executor: scan, filter, aggregate.

    Returns ``(value, groups, records_scanned)``. ``uid``-filtered
    queries read only that user's records through the log's per-user
    offset index; everything else visits the full log. Group keys use
    the same dimensions the views materialize — in particular the
    ``"window"`` dimension buckets by ``timestamp // window_width`` with
    the catalog's width, so routed and scanned answers are comparable
    key for key.
    """
    if query.uid is not None:
        records = log.by_user(query.uid)
    else:
        records = log.read_all()
    if query.group_by is None:
        count = 0
        total = 0.0
        for observation in records:
            if query.matches(observation):
                count += 1
                total += observation.label
        return finalize(query.agg, count, total), {}, len(records)
    if query.group_by == "uid":
        key_of = lambda observation: observation.uid  # noqa: E731
    elif query.group_by == "item":
        key_of = lambda observation: observation.item_id  # noqa: E731
    else:  # "window"
        key_of = lambda observation: int(  # noqa: E731
            observation.timestamp // window_width
        )
    accumulator: dict[int, tuple[int, float]] = {}
    for observation in records:
        if not query.matches(observation):
            continue
        key = key_of(observation)
        count, total = accumulator.get(key, (0, 0.0))
        accumulator[key] = (count + 1, total + observation.label)
    groups = {
        key: finalize(query.agg, count, total)
        for key, (count, total) in accumulator.items()
    }
    return None, groups, len(records)


class CostBasedPlanner:
    """Routes queries against one catalog's views and its log."""

    def __init__(self, catalog):
        self.catalog = catalog

    def plan(self, query: AnalyticsQuery, force_scan: bool = False) -> QueryPlan:
        """Choose the cheapest exact route (see module docstring).

        ``force_scan=True`` prices only the scan routes — the ablation
        baseline, and the escape hatch for auditing a routed answer.
        """
        if not isinstance(query, AnalyticsQuery):
            raise ValidationError(
                f"expected an AnalyticsQuery, got {type(query).__name__}"
            )
        log = self.catalog.log
        log_length = len(log)
        if query.uid is not None:
            scan_candidate = (
                ROUTE_USER_INDEX,
                float(max(1, log.user_record_count(query.uid))),
            )
        else:
            scan_candidate = (ROUTE_SCAN, float(max(1, log_length)))
        candidates: list[tuple[str, float]] = [scan_candidate]
        staleness: dict[str, int] = {}
        if not force_scan:
            for view in self.catalog.views.values():
                if view.covers(query):
                    route = f"mv:{view.name}"
                    candidates.append((route, view.cost(query)))
                    staleness[route] = max(0, log_length - view.high_watermark)
        route, cost = min(
            candidates,
            # Ties go to the materialized route: same entry count, but
            # no log traffic alongside the serving path.
            key=lambda cand: (cand[1], 0 if cand[0].startswith("mv:") else 1),
        )
        return QueryPlan(
            route=route,
            estimated_cost=cost,
            candidates=tuple(candidates),
            staleness_records=staleness.get(route, 0),
        )

    def execute(
        self, query: AnalyticsQuery, force_scan: bool = False
    ) -> AnalyticsResult:
        """Plan and run one query; the result carries its plan."""
        plan = self.plan(query, force_scan=force_scan)
        if plan.materialized:
            view = self.catalog.views[plan.route[len("mv:"):]]
            value, groups = view.answer(query)
        else:
            value, groups, _scanned = execute_scan(
                self.catalog.log, query, self.catalog.window_width
            )
        return AnalyticsResult(query=query, value=value, groups=groups, plan=plan)

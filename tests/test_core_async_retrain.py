"""Background (async) retraining: serving continues, swap is atomic."""

import threading
import time

import numpy as np
import pytest

from repro.common.errors import ValidationError


def feed_stream(velox, stream, count=150):
    for r in stream[:count]:
        velox.observe(uid=r.uid, x=r.item_id, y=r.rating)


class TestRetrainAsync:
    def test_completes_and_bumps_version(self, deployed_velox, small_split):
        feed_stream(deployed_velox, small_split.stream)
        handle = deployed_velox.retrain_async(reason="nightly")
        event = handle.wait(timeout=60)
        assert handle.done()
        assert event.new_version == 1
        assert event.reason == "nightly"
        assert deployed_velox.model().version == 1

    def test_serving_continues_during_retrain(self, deployed_velox, small_split):
        feed_stream(deployed_velox, small_split.stream)
        handle = deployed_velox.retrain_async()
        served = 0
        while True:
            finished = handle.done()
            __, score = deployed_velox.predict(None, served % 10, served % 20)
            assert np.isfinite(score)
            served += 1
            if finished:
                break
        handle.wait(timeout=60)
        assert served >= 1  # queries were answered throughout the retrain

    def test_observes_during_retrain_are_logged(self, deployed_velox, small_split):
        feed_stream(deployed_velox, small_split.stream, count=100)
        log = deployed_velox.manager.observation_log("songs")
        handle = deployed_velox.retrain_async()
        deployed_velox.observe(uid=1, x=2, y=4.0)
        event = handle.wait(timeout=60)
        # The retrain used the snapshot; the during-retrain observation
        # is preserved for the next one.
        assert event.observations_used <= 101
        assert len(log) >= 101

    def test_concurrent_retrains_rejected(self, deployed_velox, small_split):
        feed_stream(deployed_velox, small_split.stream)
        handle = deployed_velox.retrain_async()
        with pytest.raises(ValidationError):
            deployed_velox.retrain_async()
        handle.wait(timeout=60)
        # once finished, a new one is allowed
        second = deployed_velox.retrain_async()
        assert second.wait(timeout=60).new_version == 2

    def test_wait_timeout(self, deployed_velox, small_split):
        feed_stream(deployed_velox, small_split.stream)
        handle = deployed_velox.retrain_async()
        try:
            with pytest.raises(TimeoutError):
                handle.wait(timeout=0.0)
        finally:
            handle.wait(timeout=60)

    def test_failure_surfaces_through_wait(self, deployed_velox):
        # No observations at all -> MF retrain raises ValidationError.
        handle = deployed_velox.retrain_async()
        with pytest.raises(ValidationError):
            handle.wait(timeout=60)
        assert deployed_velox.model().version == 0  # no swap happened
        # the failed run releases the per-model guard
        handle2 = deployed_velox.retrain_async()
        with pytest.raises(ValidationError):
            handle2.wait(timeout=60)

    def test_new_version_serves_after_swap(self, deployed_velox, small_split):
        feed_stream(deployed_velox, small_split.stream)
        before = deployed_velox.predict(None, 1, 3)[1]
        handle = deployed_velox.retrain_async()
        handle.wait(timeout=60)
        after = deployed_velox.predict_detailed(None, 1, 3)
        assert not after.prediction_cache_hit or after.score != before
        assert np.isfinite(after.score)

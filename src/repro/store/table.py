"""A partitioned, versioned table in veloxstore.

Tables shard keys across :class:`~repro.store.partition.Partition` objects
using a stable hash, expose mapping-style reads and writes, optimistic
compare-and-set, and the failure/recovery hooks the cluster simulator uses
to model node loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.common.errors import KeyNotFoundError, PartitionError, VersionConflictError
from repro.common.rng import stable_hash
from repro.store.partition import Partition
from repro.store.slab import ArrayMapping, SlabPolicy, WeightRead


@dataclass(frozen=True)
class VersionedValue:
    """A read result carrying the per-key version for CAS round-trips."""

    value: object
    version: int


class Table:
    """A named collection of partitions with per-key versions.

    Partitioning is by ``stable_hash(key) % num_partitions`` unless a
    custom ``partitioner`` is supplied (the user-weight table, for
    example, partitions by ``uid`` directly so routing stays aligned
    with the cluster's user placement).
    """

    def __init__(
        self,
        name: str,
        num_partitions: int = 1,
        partitioner: Callable[[object], int] | None = None,
        value_policy: SlabPolicy | None = None,
    ):
        if not name:
            raise ValueError("table name must be non-empty")
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        self.name = name
        self.num_partitions = num_partitions
        self._partitioner = partitioner
        #: storage policy routing fixed-rank vector values into the
        #: columnar slab (None keeps the classic dict-only partitions).
        self.value_policy = value_policy
        self._partitions = [
            Partition(i, value_policy=value_policy) for i in range(num_partitions)
        ]

    # -- partition addressing ---------------------------------------------

    def partition_index(self, key: object) -> int:
        """The partition that owns ``key``."""
        if self._partitioner is not None:
            index = self._partitioner(key)
            if not 0 <= index < self.num_partitions:
                raise PartitionError(
                    f"custom partitioner returned {index} for key {key!r}; "
                    f"table {self.name!r} has {self.num_partitions} partitions"
                )
            return index
        return stable_hash(key) % self.num_partitions

    def partition(self, index: int) -> Partition:
        """The partition object at ``index``."""
        if not 0 <= index < self.num_partitions:
            raise PartitionError(
                f"table {self.name!r} has no partition {index}"
            )
        return self._partitions[index]

    def _owner(self, key: object) -> Partition:
        return self._partitions[self.partition_index(key)]

    # -- reads --------------------------------------------------------------

    def get(self, key: object) -> object:
        """Return the value for ``key`` or raise :class:`KeyNotFoundError`."""
        entry = self._owner(key).get(key)
        if entry is None:
            raise KeyNotFoundError(self.name, key)
        return entry[0]

    def get_versioned(self, key: object) -> VersionedValue:
        """Read ``(value, version)`` for compare-and-set round-trips."""
        entry = self._owner(key).get(key)
        if entry is None:
            raise KeyNotFoundError(self.name, key)
        return VersionedValue(value=entry[0], version=entry[1])

    def get_or_default(self, key: object, default: object = None) -> object:
        """Read a value, returning ``default`` when absent."""
        entry = self._owner(key).get(key)
        return default if entry is None else entry[0]

    def __getitem__(self, key: object) -> object:
        return self.get(key)

    def __contains__(self, key: object) -> bool:
        return key in self._owner(key)

    def __len__(self) -> int:
        return sum(len(p) for p in self._partitions)

    def keys(self) -> Iterator[object]:
        """Iterate every key across partitions."""
        for partition in self._partitions:
            yield from partition.keys()

    def items(self) -> Iterator[tuple[object, object]]:
        """Iterate every (key, value) pair across partitions."""
        for partition in self._partitions:
            yield from partition.items()

    def scan_partition(self, index: int) -> list[tuple[object, object]]:
        """All items in one partition — the unit batch jobs read."""
        return list(self.partition(index).items())

    # -- fast weight reads (slab-backed tables) ------------------------------

    def read_weights(self, key: object) -> WeightRead | None:
        """Fast-path serving read: ``(weight row, state shim)`` with no
        per-read value decode. Requires a ``value_policy``."""
        return self._owner(key).read_serving(key)

    def read_weights_batch(self, keys) -> dict:
        """Fast-path batch read: one fancy-index gather per partition
        over the slab-resident subset of ``keys``."""
        groups: dict[int, list] = {}
        for key in keys:
            groups.setdefault(self.partition_index(key), []).append(key)
        out: dict = {}
        for index, group in groups.items():
            out.update(self._partitions[index].read_serving_many(group))
        return out

    def export_weight_matrix(self) -> ArrayMapping:
        """Every entry's weight row as one ``ArrayMapping`` — the bulk
        columnar read the offline phase consumes. Requires a
        ``value_policy``."""
        if self.value_policy is None:
            raise PartitionError(
                f"table {self.name!r} has no value policy; "
                "export_weight_matrix needs slab-backed storage"
            )
        key_parts, row_parts = [], []
        for partition in self._partitions:
            keys, rows = partition.export_weights()
            if len(keys):
                key_parts.append(keys)
                row_parts.append(rows)
        if not key_parts:
            return ArrayMapping(
                np.empty(0, dtype=np.int64),
                np.empty((0, self.value_policy.rank), dtype=self.value_policy.dtype),
            )
        return ArrayMapping(np.concatenate(key_parts), np.concatenate(row_parts))

    def load_weight_rows(self, keys, matrix) -> int:
        """Bulk-install weight rows (one journaled LOAD per partition).

        Each key lands at its current version + 1 — the retrain swap
        path. Returns the number of rows installed.
        """
        if self.value_policy is None:
            raise PartitionError(
                f"table {self.name!r} has no value policy; "
                "load_weight_rows needs slab-backed storage"
            )
        keys = np.asarray(keys, dtype=np.int64)
        matrix = np.asarray(matrix, dtype=self.value_policy.dtype)
        if self.num_partitions == 1:
            self._partitions[0].load_rows(keys, matrix)
            return len(keys)
        owners = np.fromiter(
            (self.partition_index(int(k)) for k in keys),
            dtype=np.intp, count=len(keys),
        )
        for index in np.unique(owners):
            mask = owners == index
            self._partitions[index].load_rows(keys[mask], matrix[mask])
        return len(keys)

    def memory_bytes(self) -> int:
        """Approximate resident bytes across partitions."""
        return sum(p.memory_bytes() for p in self._partitions)

    # -- writes ---------------------------------------------------------------

    def put(self, key: object, value: object) -> int:
        """Insert/overwrite; returns the new version."""
        return self._owner(key).put(key, value)

    def __setitem__(self, key: object, value: object) -> None:
        self.put(key, value)

    def put_many(self, entries) -> int:
        """Write ``(key, value)`` pairs; returns count written.

        Writes are applied per-partition in key order; each write is
        individually journaled (no cross-partition atomicity, matching
        the storage layer Velox assumes).
        """
        count = 0
        for key, value in entries:
            self.put(key, value)
            count += 1
        return count

    def compare_and_set(self, key: object, value: object, expected_version: int) -> int:
        """Write only if the current version matches ``expected_version``.

        ``expected_version=0`` asserts the key is absent. Returns the new
        version, or raises :class:`VersionConflictError`.
        """
        partition = self._owner(key)
        entry = partition.get(key)
        actual = 0 if entry is None else entry[1]
        if actual != expected_version:
            raise VersionConflictError(self.name, key, expected_version, actual)
        return partition.put(key, value)

    def delete(self, key: object) -> bool:
        """Remove a key; returns whether it existed."""
        return self._owner(key).delete(key)

    def truncate(self) -> None:
        """Remove every key from every partition."""
        for partition in self._partitions:
            partition.truncate()

    # -- durability & failure -----------------------------------------------

    def snapshot(self) -> None:
        """Checkpoint every partition (compacting journals)."""
        for partition in self._partitions:
            partition.snapshot()

    def fail_partition(self, index: int) -> None:
        """Simulate losing one partition's volatile memory."""
        self.partition(index).fail()

    def recover_partition(self, index: int) -> int:
        """Recover one failed partition; returns journal records replayed."""
        return self.partition(index).recover()

    def recover_all(self) -> int:
        """Recover every failed partition; returns records replayed."""
        return sum(p.recover() for p in self._partitions if p.failed)

"""Offline training on the sparklite batch substrate (paper Section 4.2).

The offline phase recomputes the feature parameters θ (and user weights)
with bulk computation. For the factor models this is alternating least
squares: each iteration solves every user's ridge regression with item
factors fixed (a batch job grouped by uid), then every item's with user
factors fixed (grouped by item id) — exactly the structure a Spark ALS
takes. Biases are learned by augmenting each side's features with a
constant slot.

Two solver implementations share the math. ``solver="scalar"`` is the
reference: one Python-level ridge solve per entity, features assembled
per rating. ``solver="vectorized"`` (the default) removes the Python
interpreter from the inner loop entirely: within each grouped partition
it gathers every entity's features in one CSR-style indexed read,
segment-sums per-rating outer products into a ``(B, rank+1, rank+1)``
Gram tensor, and solves the whole batch as one stacked
``np.linalg.solve``. The shuffled tuple groups are converted to flat
arrays once, before the iteration loop, so iterations never touch a
per-rating Python object. The training-RMSE pass is likewise one
vectorized residual computation per partition instead of a per-triple
Python closure.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import as_generator
from repro.store.slab import ArrayMapping

SOLVERS = ("vectorized", "scalar")


@dataclass
class AlsResult:
    """Output of one ALS run.

    ``user_factors`` and ``user_bias`` are columnar
    :class:`~repro.store.slab.ArrayMapping` views over the solver's
    dense factor arrays — dict-compatible (``[uid]``, ``.get``,
    ``.items()``) without materializing a per-user array copy, and bulk
    consumers read the backing arrays via ``.arrays()``.
    """

    user_factors: Mapping
    user_bias: Mapping
    item_factors: np.ndarray
    item_bias: np.ndarray
    global_mean: float
    train_rmse: list[float] = field(default_factory=list)


def _solve_side(pairs, other_factors, other_bias, global_mean, rank, reg,
                eye=None, row_of=None):
    """Ridge-solve one entity's factor+bias given the other side fixed.

    ``pairs`` is a list of (other_id, rating). Features are
    ``[other_factor, 1]``; the target is ``rating - mu - other_bias``,
    so the solved coefficient on the constant slot is this entity's bias.
    ``row_of`` maps sparse entity ids to rows of ``other_factors``
    (None when ids already index the array directly).

    Regularization uses the ALS-WR weighting (Zhou et al.): the penalty
    scales with the entity's rating count, which prevents heavy raters
    from overfitting their factors — without it, ALS drives training
    error below the noise floor and generalizes poorly.
    """
    count = len(pairs)
    if eye is None:
        eye = np.eye(rank + 1)
    features = np.empty((count, rank + 1))
    targets = np.empty(count)
    for row, (other_id, rating) in enumerate(pairs):
        other_row = other_id if row_of is None else row_of[other_id]
        features[row, :rank] = other_factors[other_row]
        features[row, rank] = 1.0
        targets[row] = rating - global_mean - other_bias[other_row]
    gram = features.T @ features + reg * count * eye
    solution = np.linalg.solve(gram, features.T @ targets)
    return solution[:rank], float(solution[rank])


def _stacked_ridge(features, targets, counts, dim, reg, eye,
                   scale_reg_by_count):
    """Solve one ridge regression per entity, all stacked into one call.

    ``features`` is the row-concatenation of every entity's feature
    matrix (entity blocks contiguous, in entity order), ``targets`` the
    matching labels, ``counts[e]`` the number of rows of entity ``e``.
    Per-rating outer products are segment-summed at the entity offsets
    (``np.add.reduceat``) into a ``(B, dim, dim)`` Gram tensor, so the
    whole batch resolves as a single stacked ``np.linalg.solve`` — no
    per-entity Python loop, no per-entity LAPACK dispatch.

    Returns ``(num_entities, dim)`` solutions in entity order.
    """
    num_entities = len(counts)
    offsets = np.zeros(num_entities, dtype=np.intp)
    np.cumsum(counts[:-1], out=offsets[1:])
    outer = features[:, :, None] * features[:, None, :]  # (n, dim, dim)
    gram = np.add.reduceat(outer, offsets, axis=0)  # (B, dim, dim)
    penalty = reg * counts if scale_reg_by_count else np.full(num_entities, reg)
    gram += penalty[:, None, None] * eye
    rhs = np.add.reduceat(features * targets[:, None], offsets, axis=0)
    return np.linalg.solve(gram, rhs[:, :, None])[:, :, 0]


@dataclass
class _CsrBlock:
    """One partition's grouped ratings in structure-of-arrays form.

    The tuple-of-Python-objects representation the shuffle produces is
    converted to flat numpy arrays exactly once, before the iteration
    loop; every ALS half-iteration then reduces to indexed gathers and
    stacked solves with no Python-level per-rating work. ``ids`` holds
    the *other* side's id per rating (entity blocks contiguous, ordered
    as ``keys``); ``counts[e]`` is entity ``e``'s rating count.
    """

    keys: np.ndarray  # (num_entities,) entity ids
    counts: np.ndarray  # (num_entities,) ratings per entity
    ids: np.ndarray  # (total_ratings,) other-side id per rating
    ratings: np.ndarray  # (total_ratings,)


def _pack_groups(records) -> _CsrBlock:
    """Convert one grouped partition into a :class:`_CsrBlock`."""
    entries = list(records)
    keys = np.fromiter(
        (key for key, _pairs in entries), dtype=np.intp, count=len(entries)
    )
    counts = np.fromiter(
        (len(pairs) for _key, pairs in entries), dtype=np.intp, count=len(entries)
    )
    flat = [pair for _key, pairs in entries for pair in pairs]
    packed = np.asarray(flat, dtype=np.float64).reshape(len(flat), 2)
    return _CsrBlock(
        keys=keys,
        counts=counts,
        ids=packed[:, 0].astype(np.intp),
        ratings=packed[:, 1],
    )


def _solve_block(block: _CsrBlock, other_factors, other_bias, row_of,
                 global_mean, rank, reg, eye):
    """Vectorized ridge solves for every entity in one CSR block: one
    indexed gather builds all features/targets, then one stacked solve.

    Returns ``(keys, solutions)`` arrays — ``solutions[e]`` is entity
    ``keys[e]``'s ``rank`` factors followed by its bias — so no
    per-entity Python object is ever built on the hot path.
    """
    if block.keys.shape[0] == 0:
        return block.keys, np.empty((0, rank + 1))
    rows = block.ids if row_of is None else row_of[block.ids]
    features = np.empty((rows.shape[0], rank + 1))
    features[:, :rank] = other_factors[rows]
    features[:, rank] = 1.0
    targets = block.ratings - global_mean - other_bias[rows]
    solutions = _stacked_ridge(
        features, targets, block.counts, rank + 1, reg, eye,
        scale_reg_by_count=True,
    )
    return block.keys, solutions


@dataclass
class _TripleBlock:
    """One partition's rating triples, pre-resolved to array indices."""

    user_rows: np.ndarray  # (n,) rows into the dense user matrices
    item_ids: np.ndarray  # (n,)
    ratings: np.ndarray  # (n,)


def _pack_triples(records, uid_row) -> _TripleBlock:
    """Convert one partition of rating triples into a :class:`_TripleBlock`."""
    triples = np.asarray(list(records), dtype=np.float64).reshape(-1, 3)
    return _TripleBlock(
        user_rows=uid_row[triples[:, 0].astype(np.intp)],
        item_ids=triples[:, 1].astype(np.intp),
        ratings=triples[:, 2],
    )


def _materialize_blocks(batch_context, dataset, packer, n_parts):
    """Run one job that packs every partition of ``dataset`` with
    ``packer``, then re-parallelize the packed blocks one per partition.

    This pays the Python-tuples-to-arrays conversion (and any upstream
    shuffle) exactly once; the returned dataset lives in driver memory,
    so under the fork executor each iteration's tasks inherit the arrays
    copy-on-write with no per-iteration serialization.
    """
    blocks = dataset.map_partitions(lambda _i, records: [packer(records)]).collect()
    return batch_context.parallelize(blocks, n_parts)


def _sse_block(block: _TripleBlock, user_fac, user_b, item_fac, item_b,
               global_mean):
    """(sum_sq_error, count) for one pre-packed partition of triples."""
    if block.ratings.shape[0] == 0:
        return (0.0, 0)
    predicted = (
        global_mean
        + user_b[block.user_rows]
        + item_b[block.item_ids]
        + np.einsum(
            "ij,ij->i", user_fac[block.user_rows], item_fac[block.item_ids]
        )
    )
    residual = block.ratings - predicted
    return (float(residual @ residual), residual.shape[0])


def als_train(
    batch_context,
    ratings: list[tuple[int, int, float]],
    rank: int,
    num_items: int,
    num_iterations: int = 10,
    regularization: float = 0.1,
    seed: int = 11,
    num_partitions: int | None = None,
    solver: str = "vectorized",
) -> AlsResult:
    """Alternating least squares over ``(uid, item_id, rating)`` triples.

    Runs as sparklite jobs: the ratings dataset is cached; each half-
    iteration is a ``group_by_key`` + grouped ridge solve. Items that
    never appear keep their random initialization (bias 0), matching how
    a deployed recommender handles cold items.

    Determinism: for a fixed ``seed`` and ``num_partitions`` the result
    is identical whatever the scheduler's executor ("thread"/"fork") or
    worker count — partitioning fixes the floating-point reduction
    order, and fork-side results ship back bit-exact. Note the default
    ``num_partitions`` tracks ``batch_context.default_parallelism``, so
    cross-worker-count comparisons must pin ``num_partitions``
    explicitly. ``solver="scalar"`` and ``"vectorized"`` agree to
    floating-point tolerance, not bit-exactly (batched BLAS reductions
    associate differently).
    """
    if not ratings:
        raise ValidationError("als_train requires at least one rating")
    if rank < 1:
        raise ValidationError(f"rank must be >= 1, got {rank}")
    if num_iterations < 1:
        raise ValidationError(f"num_iterations must be >= 1, got {num_iterations}")
    if regularization < 0:
        raise ValidationError(f"regularization must be >= 0, got {regularization}")
    if solver not in SOLVERS:
        raise ValidationError(f"solver must be one of {SOLVERS}, got {solver!r}")
    max_item = max(item for _u, item, _r in ratings)
    if max_item >= num_items:
        raise ValidationError(
            f"rating references item {max_item} but num_items={num_items}"
        )

    rng = as_generator(seed)
    global_mean = float(np.mean([r for _u, _i, r in ratings]))

    item_fac = rng.normal(0.0, 0.1, (num_items, rank))
    item_b = np.zeros(num_items)
    user_ids = sorted({uid for uid, _i, _r in ratings})
    user_fac = rng.normal(0.0, 0.1, (len(user_ids), rank))
    user_b = np.zeros(len(user_ids))
    # Sparse uid -> dense row translation, shared with every task.
    uid_row = np.full(user_ids[-1] + 1, -1, dtype=np.intp)
    uid_row[user_ids] = np.arange(len(user_ids))

    n_parts = num_partitions or batch_context.default_parallelism
    dataset = batch_context.parallelize(ratings, n_parts).cache()
    by_user = dataset.map(lambda t: (t[0], (t[1], t[2]))).group_by_key(n_parts)
    by_item = dataset.map(lambda t: (t[1], (t[0], t[2]))).group_by_key(n_parts)

    # Hoisted out of the iteration loop: the identity used by every
    # ridge solve. The factor matrices are broadcast *without* copies —
    # each half-iteration's job completes (and unpersists) before the
    # driver mutates the arrays it shipped, so no task can observe a
    # torn update under either executor.
    eye = np.eye(rank + 1)
    vectorized = solver == "vectorized"

    if vectorized:
        # CSR materialization: one job per side converts the shuffled
        # Python tuple groups into flat arrays; the iteration loop then
        # touches only numpy (gathers + stacked solves), never a
        # per-rating Python object.
        user_blocks = _materialize_blocks(
            batch_context, by_user, _pack_groups, n_parts
        )
        item_blocks = _materialize_blocks(
            batch_context, by_item, _pack_groups, n_parts
        )
    else:
        by_user = by_user.cache()
        by_item = by_item.cache()
    # The RMSE pass is packed in both modes — the solver ablation
    # compares the ridge-solve implementations, not the residual pass.
    rating_blocks = _materialize_blocks(
        batch_context, dataset,
        lambda records: _pack_triples(records, uid_row), n_parts,
    )

    def solve_stage_vectorized(source, other_factors, other_bias, row_of,
                               target_fac, target_b, key_row):
        """One half-iteration: one stacked solve per CSR block, results
        scattered straight from arrays into the dense target matrices
        (each entity lives in exactly one partition, so scatter order
        cannot matter)."""
        frozen = batch_context.broadcast((other_factors, other_bias))
        solved = source.map_partitions(
            lambda _i, records: [
                _solve_block(
                    block, frozen.value[0], frozen.value[1], row_of,
                    global_mean, rank, regularization, eye,
                )
                for block in records
            ]
        ).collect()
        frozen.unpersist()
        for keys, solutions in solved:
            if keys.shape[0]:
                rows = keys if key_row is None else key_row[keys]
                target_fac[rows] = solutions[:, :rank]
                target_b[rows] = solutions[:, rank]

    def solve_stage_scalar(source, other_factors, other_bias, row_of):
        """One half-iteration via the reference per-entity scalar loop."""
        frozen = batch_context.broadcast((other_factors, other_bias))
        solved = source.map_values(
            lambda pairs: _solve_side(
                pairs, frozen.value[0], frozen.value[1],
                global_mean, rank, regularization, eye, row_of,
            )
        ).collect_as_map()
        frozen.unpersist()
        return solved

    train_rmse: list[float] = []
    for _iteration in range(num_iterations):
        # User step: solve each user's ridge with item factors fixed.
        # The frozen side ships to tasks as a broadcast, the Spark idiom
        # for large read-only state captured by closures (under the fork
        # executor the broadcast is inherited copy-on-write — no
        # serialization at all).
        if vectorized:
            solve_stage_vectorized(user_blocks, item_fac, item_b,
                                   row_of=None, target_fac=user_fac,
                                   target_b=user_b, key_row=uid_row)
            # Item step: solve each item's ridge with user factors fixed.
            solve_stage_vectorized(item_blocks, user_fac, user_b,
                                   row_of=uid_row, target_fac=item_fac,
                                   target_b=item_b, key_row=None)
        else:
            solved_users = solve_stage_scalar(by_user, item_fac, item_b,
                                              row_of=None)
            if solved_users:
                rows = uid_row[np.fromiter(solved_users, dtype=np.intp,
                                           count=len(solved_users))]
                user_fac[rows] = np.stack(
                    [f for f, _b in solved_users.values()]
                )
                user_b[rows] = np.fromiter(
                    (b for _f, b in solved_users.values()), dtype=np.float64,
                    count=len(solved_users),
                )

            # Item step: solve each item's ridge with user factors fixed.
            solved_items = solve_stage_scalar(by_item, user_fac, user_b,
                                              row_of=uid_row)
            if solved_items:
                rows = np.fromiter(solved_items, dtype=np.intp,
                                   count=len(solved_items))
                item_fac[rows] = np.stack(
                    [f for f, _b in solved_items.values()]
                )
                item_b[rows] = np.fromiter(
                    (b for _f, b in solved_items.values()), dtype=np.float64,
                    count=len(solved_items),
                )

        # Training RMSE for convergence monitoring: one vectorized
        # residual pass per pre-packed partition (no per-triple Python
        # closure or dict lookups).
        sse_counts = rating_blocks.map_partitions(
            lambda _i, records: [
                _sse_block(block, user_fac, user_b, item_fac, item_b,
                           global_mean)
                for block in records
            ]
        ).collect()
        total_sse = sum(sse for sse, _n in sse_counts)
        total_n = sum(n for _sse, n in sse_counts)
        train_rmse.append(float(np.sqrt(total_sse / total_n)))

    # Columnar views aligned with user_ids — no per-user copies.
    id_arr = np.asarray(user_ids, dtype=np.int64)
    rows = uid_row[id_arr]
    return AlsResult(
        user_factors=ArrayMapping(id_arr, user_fac[rows]),
        user_bias=ArrayMapping(id_arr, user_b[rows]),
        item_factors=item_fac,
        item_bias=item_b,
        global_mean=global_mean,
        train_rmse=train_rmse,
    )


def solve_user_weights(
    batch_context,
    observations,
    feature_fn,
    dimension: int,
    regularization: float = 0.1,
    solver: str = "vectorized",
) -> dict[int, np.ndarray]:
    """Batch re-solve of every user's ridge regression in a feature space.

    The shared offline step for computed-feature models: whenever a
    retrain changes θ (and therefore the feature space), every user's
    weights must be re-estimated against the *new* features — carrying
    old weights across feature spaces produces garbage. One sparklite
    job, grouped by uid. ``feature_fn`` is an opaque UDF so feature rows
    are still assembled per observation, but the per-user solves are
    batched into one stacked ``np.linalg.solve`` per partition
    (``solver="scalar"`` keeps the one-solve-per-user reference path).
    """
    if solver not in SOLVERS:
        raise ValidationError(f"solver must be one of {SOLVERS}, got {solver!r}")
    eye = np.eye(dimension)

    def solve_user(pairs: list) -> np.ndarray:
        """Ridge-solve one user's weights in this feature space."""
        f_matrix = np.vstack([feature_fn(x) for x, _y in pairs])
        labels = np.asarray([y for _x, y in pairs], dtype=float)
        gram = f_matrix.T @ f_matrix + regularization * eye
        return np.linalg.solve(gram, f_matrix.T @ labels)

    def solve_partition(records) -> list:
        """Batched ridge solves for every user grouped in a partition."""
        entries = list(records)
        if not entries:
            return []
        keys = [key for key, _pairs in entries]
        counts = np.array([len(pairs) for _key, pairs in entries], dtype=np.intp)
        features = np.vstack(
            [feature_fn(x) for _key, pairs in entries for x, _y in pairs]
        ).astype(np.float64, copy=False)
        targets = np.fromiter(
            (y for _key, pairs in entries for _x, y in pairs),
            dtype=np.float64, count=int(counts.sum()),
        )
        solutions = _stacked_ridge(
            features, targets, counts, dimension, regularization, eye,
            scale_reg_by_count=False,
        )
        return [(key, solutions[index]) for index, key in enumerate(keys)]

    grouped = batch_context.parallelize(
        [(ob.uid, (ob.item_data, ob.label)) for ob in observations]
    ).group_by_key()
    if solver == "vectorized":
        return grouped.map_partitions(
            lambda _i, records: solve_partition(records)
        ).collect_as_map()
    return grouped.map_values(solve_user).collect_as_map()


def predict_rating(result: AlsResult, uid: int, item_id: int) -> float:
    """Score a pair with an :class:`AlsResult` (cold users/items fall back
    to biases only)."""
    factor = result.user_factors.get(uid)
    bias = float(result.user_bias.get(uid, 0.0))
    base = result.global_mean + bias + result.item_bias[item_id]
    if factor is None:
        return float(base)
    return float(base + factor @ result.item_factors[item_id])

"""SynthLens: a synthetic MovieLens-like ratings corpus.

Ratings follow the matrix-factorization generative model the paper's
running example assumes (Section 2):

    r_ui = mu + b_u + b_i + w_u . x_i + eps,   eps ~ N(0, noise_std)

with latent factors drawn i.i.d. Gaussian and ratings clipped to the
MovieLens scale [0.5, 5.0]. Item selection is Zipfian (the paper cites
power-law item popularity [15] to justify LRU caching), and per-user
rating counts are drawn from a shifted lognormal so a few heavy users
coexist with many light ones, as in MovieLens.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigError, ValidationError
from repro.common.rng import as_generator


@dataclass(frozen=True)
class Rating:
    """One observed rating."""

    uid: int
    item_id: int
    rating: float
    timestamp: float = 0.0


@dataclass(frozen=True)
class SynthLensConfig:
    """Generator parameters.

    Attributes:
        num_users / num_items: Corpus size.
        rank: True latent dimensionality of the planted structure.
        ratings_per_user_mean: Target mean number of ratings per user
            (actual counts are lognormal around this, floored at
            ``min_ratings_per_user``).
        min_ratings_per_user: Every user rates at least this many items
            (the paper's protocol needs >= 17 per user).
        zipf_exponent: Skew of item popularity (0 = uniform).
        noise_std: Rating noise standard deviation.
        factor_scale: Std of the latent factor entries.
        bias_scale: Std of user/item bias terms.
        global_mean: The ``mu`` offset (MovieLens ~3.5).
        clip: Clip ratings into [0.5, 5.0] like MovieLens.
        seed: RNG seed for full determinism.
    """

    num_users: int = 200
    num_items: int = 500
    rank: int = 10
    ratings_per_user_mean: float = 40.0
    min_ratings_per_user: int = 20
    zipf_exponent: float = 0.8
    noise_std: float = 0.25
    factor_scale: float = 0.45
    bias_scale: float = 0.25
    global_mean: float = 3.5
    clip: bool = True
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_users < 1 or self.num_items < 1:
            raise ConfigError("num_users and num_items must be >= 1")
        if self.rank < 1:
            raise ConfigError(f"rank must be >= 1, got {self.rank}")
        if self.min_ratings_per_user < 1:
            raise ConfigError("min_ratings_per_user must be >= 1")
        if self.min_ratings_per_user > self.num_items:
            raise ConfigError(
                f"min_ratings_per_user ({self.min_ratings_per_user}) cannot "
                f"exceed num_items ({self.num_items})"
            )
        if self.ratings_per_user_mean < self.min_ratings_per_user:
            raise ConfigError(
                "ratings_per_user_mean must be >= min_ratings_per_user"
            )
        if self.zipf_exponent < 0:
            raise ConfigError(f"zipf_exponent must be >= 0, got {self.zipf_exponent}")
        if self.noise_std < 0:
            raise ConfigError(f"noise_std must be >= 0, got {self.noise_std}")


@dataclass
class SynthLens:
    """A generated corpus: the ratings plus the planted ground truth.

    The ground truth (``true_user_factors`` etc.) is never shown to the
    learners; tests use it to verify that ALS recovers signal and
    benchmarks use it to compute oracle error floors.
    """

    config: SynthLensConfig
    ratings: list[Rating]
    true_user_factors: np.ndarray
    true_item_factors: np.ndarray
    true_user_bias: np.ndarray
    true_item_bias: np.ndarray
    item_popularity: np.ndarray = field(repr=False, default=None)

    @property
    def num_users(self) -> int:
        """Number of users in the corpus."""
        return self.config.num_users

    @property
    def num_items(self) -> int:
        """Number of items in the corpus."""
        return self.config.num_items

    def by_user(self) -> dict[int, list[Rating]]:
        """Ratings grouped by uid, in generation (timestamp) order."""
        grouped: dict[int, list[Rating]] = {}
        for rating in self.ratings:
            grouped.setdefault(rating.uid, []).append(rating)
        return grouped

    def true_score(self, uid: int, item_id: int) -> float:
        """The noiseless planted rating for a pair (oracle)."""
        if not 0 <= uid < self.num_users:
            raise ValidationError(f"uid {uid} out of range")
        if not 0 <= item_id < self.num_items:
            raise ValidationError(f"item_id {item_id} out of range")
        raw = (
            self.config.global_mean
            + self.true_user_bias[uid]
            + self.true_item_bias[item_id]
            + float(self.true_user_factors[uid] @ self.true_item_factors[item_id])
        )
        if self.config.clip:
            return float(np.clip(raw, 0.5, 5.0))
        return float(raw)


def _zipf_weights(num_items: int, exponent: float) -> np.ndarray:
    """Normalized Zipf(s) popularity over item ranks 1..num_items."""
    ranks = np.arange(1, num_items + 1, dtype=float)
    weights = ranks ** (-exponent) if exponent > 0 else np.ones(num_items)
    return weights / weights.sum()


def generate_synthlens(config: SynthLensConfig | None = None) -> SynthLens:
    """Generate a deterministic SynthLens corpus from ``config``."""
    cfg = config if config is not None else SynthLensConfig()
    rng = as_generator(cfg.seed)

    user_factors = rng.normal(0.0, cfg.factor_scale, (cfg.num_users, cfg.rank))
    item_factors = rng.normal(0.0, cfg.factor_scale, (cfg.num_items, cfg.rank))
    user_bias = rng.normal(0.0, cfg.bias_scale, cfg.num_users)
    item_bias = rng.normal(0.0, cfg.bias_scale, cfg.num_items)

    popularity = _zipf_weights(cfg.num_items, cfg.zipf_exponent)
    # Shuffle popularity over item ids so item 0 is not always the head.
    pop_order = rng.permutation(cfg.num_items)
    popularity = popularity[pop_order]

    # Per-user rating counts: lognormal around the target mean, floored.
    mu = np.log(max(cfg.ratings_per_user_mean, 1.0)) - 0.25
    counts = rng.lognormal(mean=mu, sigma=0.7, size=cfg.num_users)
    counts = np.maximum(counts.astype(int), cfg.min_ratings_per_user)
    counts = np.minimum(counts, cfg.num_items)

    ratings: list[Rating] = []
    timestamp = 0.0
    for uid in range(cfg.num_users):
        chosen = rng.choice(
            cfg.num_items, size=counts[uid], replace=False, p=popularity
        )
        for item_id in chosen:
            item_id = int(item_id)
            raw = (
                cfg.global_mean
                + user_bias[uid]
                + item_bias[item_id]
                + float(user_factors[uid] @ item_factors[item_id])
                + rng.normal(0.0, cfg.noise_std)
            )
            value = float(np.clip(raw, 0.5, 5.0)) if cfg.clip else float(raw)
            ratings.append(Rating(uid, item_id, value, timestamp))
            timestamp += 1.0

    # Interleave users in time so streams are realistic (round-robin by
    # original order rather than user-blocked).
    rng.shuffle(ratings)
    ratings = [
        Rating(r.uid, r.item_id, r.rating, float(i)) for i, r in enumerate(ratings)
    ]

    return SynthLens(
        config=cfg,
        ratings=ratings,
        true_user_factors=user_factors,
        true_item_factors=item_factors,
        true_user_bias=user_bias,
        true_item_bias=item_bias,
        item_popularity=popularity,
    )

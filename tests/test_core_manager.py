"""ModelManager: observe path, health, staleness, retrain, rollback."""

import numpy as np
import pytest

from repro import Velox, VeloxConfig
from repro.common.errors import ValidationError
from repro.core.manager import ModelHealth
from tests.conftest import make_initial_weights, make_mf_model


class TestObserve:
    def test_observation_logged_durably(self, deployed_velox):
        deployed_velox.observe(uid=2, x=5, y=4.0)
        log = deployed_velox.manager.observation_log("songs")
        assert len(log) == 1
        ob = log.read_all()[0]
        assert (ob.uid, ob.item_id, ob.label) == (2, 5, 4.0)

    def test_observe_updates_weights(self, deployed_velox):
        table = deployed_velox.manager.user_state_table("songs")
        before = table.get(2).weights.copy()
        deployed_velox.observe(uid=2, x=5, y=5.0)
        after = table.get(2).weights
        assert not np.allclose(before, after)

    def test_observe_moves_prediction_toward_label(self, deployed_velox):
        uid, item = 3, 8
        for _ in range(10):
            deployed_velox.observe(uid=uid, x=item, y=5.0)
        __, score = deployed_velox.predict(None, uid, item)
        before = deployed_velox.manager.user_state_table("songs")
        assert score > 3.5  # pulled strongly toward the repeated 5.0 label

    def test_observe_returns_pre_update_loss(self, deployed_velox):
        result = deployed_velox.observe(uid=2, x=5, y=4.0)
        expected = (4.0 - result.prediction_before_update) ** 2
        assert result.loss == pytest.approx(expected)

    def test_observe_routes_to_owner(self, deployed_velox):
        result = deployed_velox.observe(uid=3, x=1, y=3.0)
        assert result.node_id == 1  # 3 % 2 nodes

    def test_new_user_created_with_bootstrap_weights(self, deployed_velox):
        uid = 50_000
        deployed_velox.observe(uid=uid, x=2, y=4.5)
        table = deployed_velox.manager.user_state_table("songs")
        assert uid in table
        assert table.get(uid).observation_count == 1

    def test_nonfinite_label_rejected(self, deployed_velox):
        with pytest.raises(ValidationError):
            deployed_velox.observe(uid=1, x=1, y=float("nan"))

    def test_validation_observation_pooled(self, deployed_velox):
        deployed_velox.observe(uid=1, x=1, y=3.0, validation=True)
        health = deployed_velox.health()
        assert len(health.validation_pool) == 1
        assert health.validation_loss.count == 1


class TestHealthTracking:
    def test_observations_counted(self, deployed_velox):
        for i in range(5):
            deployed_velox.observe(uid=i, x=i, y=3.0)
        assert deployed_velox.health().observations == 5

    def test_baseline_freezes_after_window(self):
        health = ModelHealth(window=3)
        for loss in (1.0, 1.0, 1.0, 100.0, 100.0, 100.0):
            health.record(loss)
        assert health.baseline.mean == pytest.approx(1.0)
        assert health.recent.mean == pytest.approx(100.0)

    def test_staleness_requires_min_observations(self):
        health = ModelHealth(window=2)
        health.record(1.0)
        health.record(1.0)
        health.record(100.0)
        health.record(100.0)
        assert health.is_stale(ratio=1.5, min_observations=100) is False
        assert health.is_stale(ratio=1.5, min_observations=4) is True

    def test_not_stale_when_loss_flat(self):
        health = ModelHealth(window=3)
        for __ in range(20):
            health.record(1.0)
        assert health.is_stale(ratio=1.25, min_observations=5) is False

    def test_reset_after_retrain(self):
        health = ModelHealth(window=2)
        for loss in (1.0, 1.0, 9.0, 9.0):
            health.record(loss)
        health.record_validation_example(0, 1, 3.0, 0.5)
        health.reset_after_retrain()
        assert health.observations == 0
        assert health.baseline.count == 0
        assert len(health.validation_pool) == 1  # pool survives


class TestRetrain:
    def test_manual_retrain_bumps_version(self, deployed_velox, small_split):
        for r in small_split.stream[:200]:
            deployed_velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        event = deployed_velox.retrain(reason="test")
        assert event.new_version == 1
        assert event.observations_used == 200
        assert deployed_velox.model().version == 1

    def test_retrain_improves_fit_to_stream(self, deployed_velox, small_split):
        stream = small_split.stream
        for r in stream:
            deployed_velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        deployed_velox.retrain()
        # after retraining on the stream, predictions should fit it well
        errors = []
        for r in stream[:100]:
            __, score = deployed_velox.predict(None, r.uid, r.item_id)
            errors.append((score - r.rating) ** 2)
        assert float(np.mean(errors)) < 0.4

    def test_retrain_resets_health(self, deployed_velox, small_split):
        for r in small_split.stream[:50]:
            deployed_velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        deployed_velox.retrain()
        assert deployed_velox.health().observations == 0

    def test_retrain_records_event(self, deployed_velox, small_split):
        for r in small_split.stream[:30]:
            deployed_velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        deployed_velox.retrain(reason="scheduled")
        events = deployed_velox.manager.retrain_events
        assert len(events) == 1
        assert events[0].reason == "scheduled"

    def test_retrain_event_carries_batch_profile(self, deployed_velox, small_split):
        for r in small_split.stream[:30]:
            deployed_velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        event = deployed_velox.retrain(reason="profiled")
        assert event.batch_seconds is not None
        assert event.batch_seconds > 0
        assert event.batch_stages is not None
        assert event.batch_stages >= 1
        if event.batch_utilization is not None:
            assert 0 < event.batch_utilization <= 1.5  # timer noise tolerance

    def test_deploy_wires_batch_executor(self):
        from repro.common import VeloxConfig
        from repro.core.velox import Velox

        velox = Velox.deploy(
            VeloxConfig(batch_executor="fork"), auto_retrain=False
        )
        assert velox.batch_context.executor == "fork"

    def test_caches_repopulated_on_retrain(self, deployed_velox, small_split):
        # Warm caches with some traffic, then retrain.
        for uid in range(10):
            deployed_velox.predict(None, uid, uid % 5)
        for r in small_split.stream[:50]:
            deployed_velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        event = deployed_velox.retrain()
        assert event.caches_repopulated > 0
        # Repopulated feature entries belong to the *new* version.
        model = deployed_velox.model()
        keys = [
            key
            for cache in deployed_velox.service.feature_caches
            for key in cache.keys()
        ]
        assert keys and all(key[1] == model.version for key in keys)

    def test_stale_model_triggers_auto_retrain(self, trained_als, small_split):
        model = make_mf_model(trained_als)
        velox = Velox.deploy(
            VeloxConfig(
                num_nodes=2,
                staleness_window=20,
                min_observations_for_staleness=40,
                staleness_loss_ratio=2.5,
            ),
            auto_retrain=True,
        )
        velox.add_model(model, make_initial_weights(model, trained_als))
        # Phase 1: in-distribution feedback builds a low baseline.
        for r in small_split.stream[:40]:
            velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        # Phase 2: the world shifts — labels invert (5.5 - r), losses spike.
        retrained = False
        for r in small_split.stream[40:]:
            result = velox.observe(uid=r.uid, x=r.item_id, y=5.5 - r.rating)
            if result.retrained:
                retrained = True
                break
        assert retrained
        assert velox.model().version == 1


class TestRollback:
    def test_rollback_restores_old_parameters(self, deployed_velox, small_split):
        old_factors = deployed_velox.model().item_factors.copy()
        for r in small_split.stream[:100]:
            deployed_velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        deployed_velox.retrain()
        assert not np.allclose(deployed_velox.model().item_factors, old_factors)
        revived = deployed_velox.rollback(version=0)
        assert np.allclose(revived.item_factors, old_factors)
        assert revived.version == 2  # forward version

    def test_rollback_invalidates_caches(self, deployed_velox, small_split):
        deployed_velox.predict(None, 1, 3)
        for r in small_split.stream[:30]:
            deployed_velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        deployed_velox.retrain()
        deployed_velox.rollback(version=0)
        result = deployed_velox.predict_detailed(None, 1, 3)
        assert not result.prediction_cache_hit

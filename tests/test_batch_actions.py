"""Dataset actions: collect/count/take/reduce/fold/aggregate and friends."""

import pytest

from repro.batch import BatchContext
from repro.common.errors import BatchExecutionError


@pytest.fixture
def ctx():
    return BatchContext(default_parallelism=3)


class TestCountAndCollect:
    def test_count(self, ctx):
        assert ctx.parallelize(range(23), 4).count() == 23

    def test_count_empty(self, ctx):
        assert ctx.parallelize([], 2).count() == 0

    def test_collect_preserves_order(self, ctx):
        data = list(range(50))
        assert ctx.parallelize(data, 7).collect() == data


class TestTakeAndFirst:
    def test_take_fewer_than_available(self, ctx):
        assert ctx.parallelize(range(100), 10).take(5) == [0, 1, 2, 3, 4]

    def test_take_more_than_available(self, ctx):
        assert ctx.parallelize([1, 2], 2).take(10) == [1, 2]

    def test_take_zero(self, ctx):
        assert ctx.parallelize([1, 2], 1).take(0) == []

    def test_take_negative_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1]).take(-1)

    def test_take_does_not_compute_later_partitions(self, ctx):
        seen = []
        ds = ctx.parallelize(range(100), 10).map(lambda x: seen.append(x) or x)
        ds.take(3)
        assert max(seen) < 10  # only the first partition was computed

    def test_first(self, ctx):
        assert ctx.parallelize([7, 8], 2).first() == 7

    def test_first_empty_raises(self, ctx):
        with pytest.raises(BatchExecutionError):
            ctx.parallelize([], 1).first()


class TestReduceFoldAggregate:
    def test_reduce_sum(self, ctx):
        assert ctx.parallelize(range(10), 4).reduce(lambda a, b: a + b) == 45

    def test_reduce_with_empty_partitions(self, ctx):
        assert ctx.parallelize([5], 4).reduce(lambda a, b: a + b) == 5

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(BatchExecutionError):
            ctx.parallelize([], 2).reduce(lambda a, b: a + b)

    def test_fold(self, ctx):
        assert ctx.parallelize(range(5), 2).fold(0, lambda a, b: a + b) == 10

    def test_fold_zero_not_mutated_across_partitions(self, ctx):
        # Spark fold semantics: the zero and the elements share a type.
        result = ctx.parallelize([[1], [2], [3]], 3).fold([], lambda a, b: a + b)
        assert sorted(result) == [1, 2, 3]

    def test_aggregate_mean(self, ctx):
        total, count = ctx.parallelize(range(10), 3).aggregate(
            (0, 0),
            lambda acc, x: (acc[0] + x, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        assert total == 45 and count == 10

    def test_sum_mean_max_min(self, ctx):
        ds = ctx.parallelize([4.0, 1.0, 7.0, 2.0], 2)
        assert ds.sum() == 14.0
        assert ds.mean() == pytest.approx(3.5)
        assert ds.max() == 7.0
        assert ds.min() == 1.0

    def test_mean_empty_raises(self, ctx):
        with pytest.raises(BatchExecutionError):
            ctx.parallelize([], 1).mean()


class TestKeyValueActions:
    def test_count_by_key(self, ctx):
        pairs = ctx.parallelize([("a", 1), ("a", 2), ("b", 1)], 2)
        assert pairs.count_by_key() == {"a": 2, "b": 1}

    def test_collect_as_map_last_wins(self, ctx):
        pairs = ctx.parallelize([("k", 1), ("k", 2)], 1)
        assert pairs.collect_as_map() == {"k": 2}

    def test_lookup(self, ctx):
        pairs = ctx.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
        assert sorted(pairs.lookup("a")) == [1, 3]
        assert pairs.lookup("zz") == []

    def test_foreach_side_effects(self, ctx):
        seen = []
        ctx.parallelize(range(5), 2).foreach(seen.append)
        assert sorted(seen) == [0, 1, 2, 3, 4]

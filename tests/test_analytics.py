"""The MV-first analytics tier: query model, rollups, planner routing,
integrity replay, engine wiring, and the frontend round trip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytics import (
    AnalyticsEngine,
    AnalyticsQuery,
    CostBasedPlanner,
    IntegrityChecker,
    ItemRollup,
    MVCatalog,
    ROUTE_SCAN,
    ROUTE_USER_INDEX,
    UserRollup,
    WindowRollup,
    execute_scan,
)
from repro.common.errors import ConfigError, StorageError, ValidationError
from repro.frontend import AnalyticsApiRequest, PipelinedClient, RemoteClient, VeloxServer
from repro.frontend.client import VeloxClient
from repro.store import Observation, ObservationLog, VeloxStore


def obs(uid: int, item: int, label: float, ts: float | None = None) -> Observation:
    return Observation(
        uid=uid, item_id=item, label=label,
        timestamp=float(ts) if ts is not None else 0.0,
    )


def fill_log(log: ObservationLog, n: int, users: int = 5, items: int = 8,
             seed: int = 0) -> None:
    """Canonical stamping: timestamp == offset, labels deterministic."""
    rng = np.random.default_rng(seed)
    for i in range(n):
        log.append(
            obs(int(rng.integers(users)), int(rng.integers(items)),
                float(rng.normal()), ts=len(log))
        )


class TestQueryModel:
    def test_rejects_unknown_aggregate(self):
        with pytest.raises(ValidationError):
            AnalyticsQuery(agg="median")

    def test_rejects_unknown_group_dimension(self):
        with pytest.raises(ValidationError):
            AnalyticsQuery(group_by="hour")

    def test_rejects_group_by_filtered_dimension(self):
        with pytest.raises(ValidationError):
            AnalyticsQuery(uid=1, group_by="uid")
        with pytest.raises(ValidationError):
            AnalyticsQuery(item_id=1, group_by="item")

    def test_rejects_inverted_time_range(self):
        with pytest.raises(ValidationError):
            AnalyticsQuery(time_start=10.0, time_end=5.0)

    def test_matches_is_half_open_on_time(self):
        query = AnalyticsQuery(time_start=1.0, time_end=3.0)
        assert not query.matches(obs(0, 0, 0.0, ts=0.9))
        assert query.matches(obs(0, 0, 0.0, ts=1.0))
        assert query.matches(obs(0, 0, 0.0, ts=2.9))
        assert not query.matches(obs(0, 0, 0.0, ts=3.0))

    def test_mean_of_empty_selection_is_none(self):
        log = ObservationLog()
        value, groups, _ = execute_scan(log, AnalyticsQuery(agg="mean"), 10)
        assert value is None and groups == {}


class TestRollups:
    def test_user_rollup_folds_and_advances_watermark(self):
        view = UserRollup()
        view.apply(0, obs(1, 0, 2.0))
        view.apply(1, obs(1, 1, 3.0))
        view.apply(2, obs(2, 0, 5.0))
        state, watermark = view.snapshot()
        assert watermark == 3
        assert state == {1: (2, 5.0), 2: (1, 5.0)}

    def test_exact_key_answer_and_cost(self):
        view = ItemRollup()
        for i in range(6):
            view.apply(i, obs(0, i % 2, 1.0))
        query = AnalyticsQuery(item_id=0, agg="count")
        assert view.covers(query)
        assert view.cost(query) == 1.0
        value, groups = view.answer(query)
        assert value == 3 and groups == {}

    def test_grouped_answer_and_cost(self):
        view = UserRollup()
        for i in range(4):
            view.apply(i, obs(i % 2, 0, float(i)))
        query = AnalyticsQuery(group_by="uid", agg="sum")
        assert view.cost(query) == 2.0
        _, groups = view.answer(query)
        assert groups == {0: 0.0 + 2.0, 1: 1.0 + 3.0}

    def test_keyed_view_does_not_cover_time_filters(self):
        view = UserRollup()
        assert not view.covers(AnalyticsQuery(uid=1, time_start=0.0))
        assert not view.covers(AnalyticsQuery(uid=1, item_id=2))

    def test_uncovered_answer_raises(self):
        with pytest.raises(ValidationError):
            UserRollup().answer(AnalyticsQuery(uid=1, time_start=0.0))

    def test_window_rollup_merges_closed_and_open(self):
        view = WindowRollup(width=3)
        # Canonical stamping: bucket 0 = offsets 0-2 (closes), bucket 1
        # = offset 3 (still open in the operator).
        for i in range(4):
            view.apply(i, obs(0, 0, 1.0, ts=i))
        state, watermark = view.snapshot()
        assert watermark == 4
        assert state == {0: (3, 3.0), 1: (1, 1.0)}

    def test_window_rollup_covers_only_aligned_ranges(self):
        view = WindowRollup(width=10)
        assert view.covers(AnalyticsQuery(time_start=10.0, time_end=30.0))
        assert not view.covers(AnalyticsQuery(time_start=5.0))
        assert not view.covers(AnalyticsQuery(time_end=33.0))
        assert not view.covers(AnalyticsQuery(uid=1))

    def test_window_rollup_range_select(self):
        view = WindowRollup(width=2)
        for i in range(8):
            view.apply(i, obs(0, 0, float(i), ts=i))
        _, groups = view.answer(
            AnalyticsQuery(time_start=2.0, time_end=6.0, group_by="window",
                           agg="count")
        )
        assert groups == {1: 2, 2: 2}

    def test_window_width_validation(self):
        with pytest.raises(ValidationError):
            WindowRollup(width=0)


class TestPlanner:
    def make_catalog(self, n: int = 200) -> MVCatalog:
        log = ObservationLog()
        fill_log(log, n)
        return MVCatalog("test", log, window_width=25)

    def test_uid_filter_routes_to_user_mv(self):
        planner = CostBasedPlanner(self.make_catalog())
        plan = planner.plan(AnalyticsQuery(uid=2, agg="mean"))
        assert plan.route == "mv:user"
        assert plan.estimated_cost == 1.0
        assert plan.materialized
        routes = {route for route, _ in plan.candidates}
        assert ROUTE_USER_INDEX in routes  # scan priced, not chosen

    def test_time_filtered_item_query_falls_back_to_scan(self):
        catalog = self.make_catalog()
        planner = CostBasedPlanner(catalog)
        plan = planner.plan(AnalyticsQuery(item_id=1, time_start=0.0))
        assert plan.route == ROUTE_SCAN
        assert plan.estimated_cost == float(len(catalog.log))

    def test_unaligned_window_query_falls_back_to_scan(self):
        planner = CostBasedPlanner(self.make_catalog())
        plan = planner.plan(
            AnalyticsQuery(time_start=13.0, group_by="window", agg="count")
        )
        assert plan.route == ROUTE_SCAN

    def test_aligned_window_query_routes_to_window_mv(self):
        planner = CostBasedPlanner(self.make_catalog())
        plan = planner.plan(
            AnalyticsQuery(time_start=25.0, time_end=100.0,
                           group_by="window", agg="sum")
        )
        assert plan.route == "mv:window"
        assert plan.estimated_cost == 3.0  # buckets 1, 2, 3

    def test_force_scan_prices_only_scans(self):
        planner = CostBasedPlanner(self.make_catalog())
        plan = planner.plan(AnalyticsQuery(uid=2), force_scan=True)
        assert plan.route == ROUTE_USER_INDEX
        assert all(not route.startswith("mv:") for route, _ in plan.candidates)

    def test_uid_scan_priced_by_user_index(self):
        catalog = self.make_catalog()
        planner = CostBasedPlanner(catalog)
        plan = planner.plan(AnalyticsQuery(uid=3), force_scan=True)
        assert plan.estimated_cost == float(
            catalog.log.user_record_count(3)
        )

    def test_plan_provenance_rides_the_result(self):
        planner = CostBasedPlanner(self.make_catalog())
        result = planner.execute(AnalyticsQuery(uid=1, agg="count"))
        payload = result.payload()
        assert payload["plan"]["route"] == "mv:user"
        assert payload["plan"]["staleness_records"] == 0
        assert len(payload["plan"]["candidates"]) >= 2

    def test_rejects_non_query(self):
        planner = CostBasedPlanner(self.make_catalog(10))
        with pytest.raises(ValidationError):
            planner.plan({"uid": 1})


#: Shapes whose routed answer is bit-identical to the scan: single-key
#: filters and grouped breakdowns touch each key's subtotal, which was
#: folded in the same record order the scan uses.
EXACT_QUERY_SHAPES = [
    AnalyticsQuery(uid=3, agg="count"),
    AnalyticsQuery(uid=1, agg="mean"),
    AnalyticsQuery(item_id=2, agg="sum"),
    AnalyticsQuery(group_by="uid", agg="mean"),
    AnalyticsQuery(group_by="item", agg="count"),
    AnalyticsQuery(group_by="window", agg="sum"),
    AnalyticsQuery(time_start=50.0, time_end=150.0, group_by="window",
                   agg="count"),
]


class TestRoutedAnswersMatchScans:
    def make_planner(self) -> CostBasedPlanner:
        log = ObservationLog()
        fill_log(log, 400, users=6, items=10, seed=7)
        return CostBasedPlanner(MVCatalog("eq", log, window_width=50))

    @pytest.mark.parametrize("query", EXACT_QUERY_SHAPES, ids=repr)
    def test_routed_equals_forced_scan_exactly(self, query):
        planner = self.make_planner()
        routed = planner.execute(query)
        scanned = planner.execute(query, force_scan=True)
        assert routed.value == scanned.value
        assert routed.groups == scanned.groups

    def test_global_scalar_matches_to_float_reassociation(self):
        """An unfiltered scalar sums per-key subtotals on the MV path
        but record-by-record on the scan path; the answers agree up to
        float addition order."""
        planner = self.make_planner()
        query = AnalyticsQuery(agg="sum")
        routed = planner.execute(query)
        scanned = planner.execute(query, force_scan=True)
        assert routed.plan.materialized and not scanned.plan.materialized
        assert routed.value == pytest.approx(scanned.value, rel=1e-9)


class TestIntegrity:
    def test_clean_catalog_passes_exact_check(self):
        log = ObservationLog()
        fill_log(log, 300)
        catalog = MVCatalog("ok", log, window_width=30)
        report = IntegrityChecker(catalog).check()
        assert report.ok
        assert {v.view for v in report.views} == {"user", "item", "window"}
        assert all(v.high_watermark == 300 for v in report.views)
        assert all(v.max_abs_drift == 0.0 for v in report.views)

    def test_injected_sum_drift_is_detected(self):
        log = ObservationLog()
        fill_log(log, 100)
        catalog = MVCatalog("drift", log)
        view = catalog.view("user")
        key = next(iter(view._acc))
        count, total = view._acc[key]
        view._acc[key] = (count, total + 0.5)
        report = IntegrityChecker(catalog).check()
        assert not report.ok
        verdict = {v.view: v for v in report.views}["user"]
        assert verdict.mismatched_keys == 1
        assert verdict.max_abs_drift == pytest.approx(0.5)

    def test_injected_extra_key_is_detected(self):
        log = ObservationLog()
        fill_log(log, 50)
        catalog = MVCatalog("extra", log)
        catalog.view("item")._acc[10_000] = (1, 1.0)
        report = IntegrityChecker(catalog).check()
        verdict = {v.view: v for v in report.views}["item"]
        assert verdict.extra_keys == 1 and not verdict.ok

    def test_injected_missing_key_is_detected(self):
        log = ObservationLog()
        fill_log(log, 50)
        catalog = MVCatalog("missing", log)
        view = catalog.view("user")
        del view._acc[next(iter(view._acc))]
        report = IntegrityChecker(catalog).check()
        verdict = {v.view: v for v in report.views}["user"]
        assert verdict.missing_keys == 1 and not verdict.ok

    def test_tolerance_forgives_bounded_drift(self):
        log = ObservationLog()
        fill_log(log, 40)
        catalog = MVCatalog("tol", log)
        view = catalog.view("user")
        key = next(iter(view._acc))
        count, total = view._acc[key]
        view._acc[key] = (count, total + 1e-12)
        assert not IntegrityChecker(catalog).check().ok
        assert IntegrityChecker(catalog).check(tolerance=1e-9).ok


class TestCatalog:
    def test_backfills_existing_log_on_registration(self):
        log = ObservationLog()
        fill_log(log, 120)
        catalog = MVCatalog("warm", log)
        for view in catalog.views.values():
            assert view.high_watermark == 120
        assert catalog.staleness_records() == 0

    def test_duplicate_view_name_rejected(self):
        catalog = MVCatalog("dup", ObservationLog())
        with pytest.raises(ValidationError):
            catalog.register(UserRollup())

    def test_unknown_view_lookup_raises(self):
        with pytest.raises(ValidationError):
            MVCatalog("x", ObservationLog()).view("nope")

    def test_describe_shape(self):
        log = ObservationLog()
        fill_log(log, 10)
        description = MVCatalog("d", log, window_width=5).describe()
        assert description["window_width"] == 5
        assert description["views"]["user"]["high_watermark"] == 10


class TestEngine:
    def test_attaches_catalogs_to_future_and_existing_logs(self):
        store = VeloxStore()
        store.create_log("before")
        engine = AnalyticsEngine(store, window_width=10)
        store.create_log("after")
        assert engine.catalog_names() == ["after", "before"]
        assert engine.catalog("before").window_width == 10

    def test_query_metering_by_route(self):
        store = VeloxStore()
        log = store.create_log("m")
        engine = AnalyticsEngine(store)
        fill_log(log, 60)
        engine.query("m", AnalyticsQuery(uid=1))          # mv hit
        engine.query("m", AnalyticsQuery(uid=1), force_scan=True)  # indexed
        engine.query("m", AnalyticsQuery(time_start=0.5))  # full scan
        snap = engine.metrics.snapshot()
        assert snap["queries_total"] == 3
        assert snap["mv_hits"] == 1
        assert snap["indexed_scans"] == 1
        assert snap["full_scans"] == 1
        assert snap["maintenance_applies"] == 60 * 3

    def test_unknown_log_raises_storage_error(self):
        engine = AnalyticsEngine(VeloxStore())
        with pytest.raises(StorageError):
            engine.query("ghost", AnalyticsQuery())

    def test_integrity_metering(self):
        store = VeloxStore()
        log = store.create_log("m")
        engine = AnalyticsEngine(store)
        fill_log(log, 30)
        assert engine.integrity("m").ok
        reports = engine.integrity_all()
        assert reports["m"].ok
        snap = engine.metrics.snapshot()
        assert snap["integrity_checks"] == 2
        assert snap["integrity_failures"] == 0


class TestVeloxIntegration:
    def observe_some(self, velox, n: int = 80) -> None:
        rng = np.random.default_rng(11)
        for _ in range(n):
            velox.observe(
                uid=int(rng.integers(10)), x=int(rng.integers(30)),
                y=float(rng.integers(1, 6)),
            )

    def test_routed_query_through_the_facade(self, deployed_velox):
        self.observe_some(deployed_velox)
        result = deployed_velox.analytics_query(AnalyticsQuery(uid=3, agg="count"))
        assert result.plan.route == "mv:user"
        forced = deployed_velox.analytics_query(
            AnalyticsQuery(uid=3, agg="count"), force_scan=True
        )
        assert forced.value == result.value

    def test_observe_timestamps_align_with_window_buckets(self, deployed_velox):
        """The manager stamps timestamp = log offset, so window buckets
        partition the log into exact width-sized runs."""
        self.observe_some(deployed_velox, n=50)
        width = deployed_velox.analytics.window_width
        result = deployed_velox.analytics_query(
            AnalyticsQuery(group_by="window", agg="count")
        )
        log = deployed_velox.manager.observation_log("songs")
        seeded = len(log) - 50  # fixture may seed initial observations
        assert sum(result.groups.values()) == len(log)
        assert all(count <= width for count in result.groups.values())
        assert seeded >= 0

    def test_integrity_through_the_facade(self, deployed_velox):
        self.observe_some(deployed_velox, n=40)
        assert deployed_velox.analytics_integrity().ok

    def test_window_width_from_config_extra(self):
        from repro import Velox, VeloxConfig

        velox = Velox.deploy(
            VeloxConfig(num_nodes=1, extra={"analytics_window": 7}),
            auto_retrain=False,
        )
        assert velox.analytics.window_width == 7

    def test_disabled_analytics_raises_config_error(self):
        from repro import Velox, VeloxConfig

        velox = Velox.deploy(
            VeloxConfig(num_nodes=1, analytics=False), auto_retrain=False
        )
        assert velox.analytics is None
        with pytest.raises(ConfigError):
            velox.analytics_query(AnalyticsQuery())


class TestFrontend:
    def test_client_analytics_and_status_export(self, deployed_velox):
        client = VeloxClient(deployed_velox)
        for i in range(20):
            client.observe(uid=i % 4, item=i % 9, label=float(i % 5))
        response = client.analytics(uid=1, agg="count")
        assert response.ok, response.error
        assert response.payload["plan"]["route"] == "mv:user"
        grouped = client.analytics(group_by="item", agg="mean")
        assert grouped.ok and grouped.payload["group_by"] == "item"
        status = client.status()
        analytics = status.payload["analytics"]
        assert analytics["metrics"]["queries_total"] == 2
        assert analytics["metrics"]["mv_hits"] >= 1
        assert "observations:songs" in analytics["catalogs"]

    def test_invalid_query_becomes_error_envelope(self, deployed_velox):
        client = VeloxClient(deployed_velox)
        response = client.analytics(uid=1, group_by="uid")
        assert not response.ok
        assert "ValidationError" in response.error

    def test_dispatch_async_runs_off_thread(self, deployed_velox):
        import threading

        client = VeloxClient(deployed_velox)
        client.observe(uid=1, item=2, label=3.0)
        future = client.dispatch_async(AnalyticsApiRequest(uid=1, agg="count"))
        response = future.result(timeout=10)
        assert response.ok
        # The side pool exists and is not the caller's thread.
        assert client._analytics_pool is not None
        name = client._analytics_pool.submit(
            lambda: threading.current_thread().name
        ).result(5)
        assert name.startswith("velox-analytics")

    def test_analytics_over_both_wire_protocols(self, deployed_velox):
        client = VeloxClient(deployed_velox)
        for i in range(30):
            client.observe(uid=i % 5, item=i % 7, label=1.0)
        with VeloxServer(deployed_velox) as server:
            with PipelinedClient(server.host, server.port) as binary:
                assert binary.protocol == "binary"
                response = binary.analytics(uid=2, agg="count")
                assert response.ok, response.error
                assert response.payload["plan"]["route"] == "mv:user"
            with RemoteClient(server.host, server.port) as json_client:
                response_json = json_client.call(
                    AnalyticsApiRequest(uid=2, agg="count")
                )
                assert response_json.ok
                assert response_json.payload == response.payload

"""The Velox model manager: lifecycle orchestration (paper Section 4).

Responsibilities, mapping to the paper's list:

* **Feedback and data collection (4.1)** — ``observe`` appends to the
  durable observation log and triggers the online update.
* **Offline + online learning (4.2)** — online per-user updates through
  the configured updater; offline retraining of θ delegated to the
  batch substrate via ``VeloxModel.retrain``, followed by cache
  repopulation.
* **Model evaluation (4.3)** — per-model health tracking (running loss
  aggregates, a recent-loss window, progressive cross-validation, and a
  bandit-collected validation pool); staleness detection triggers
  retraining automatically.
* **Lifecycle** — version history, rollback, and retrain event records.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from threading import RLock

import numpy as np

from repro.common.config import VeloxConfig
from repro.common.errors import PartitionError, ValidationError
from repro.core.model import ModelRegistry, VeloxModel
from repro.core.online import UserModelState, UserStateCodec, make_updater
from repro.core.bootstrap import UserWeightAverager
from repro.metrics.streaming import StreamingMeanVar, WindowedMean
from repro.store.oblog import Observation
from repro.store.slab import ArrayMapping, SlabPolicy


@dataclass
class ModelHealth:
    """Quality-monitoring state for one deployed model.

    ``baseline`` freezes over the first ``window`` losses after each
    (re)deployment; ``recent`` is a sliding window. The model is stale
    when the recent mean exceeds ``staleness_loss_ratio`` times the
    frozen baseline (and enough observations have been seen).
    """

    window: int
    baseline: StreamingMeanVar = field(default_factory=StreamingMeanVar)
    recent: WindowedMean = None
    cross_validation: StreamingMeanVar = field(default_factory=StreamingMeanVar)
    validation_pool: list = field(default_factory=list)
    validation_loss: StreamingMeanVar = field(default_factory=StreamingMeanVar)
    observations: int = 0

    def __post_init__(self):
        if self.recent is None:
            self.recent = WindowedMean(self.window)

    def record(self, loss: float) -> None:
        """Fold one loss into the baseline/recent trackers."""
        self.observations += 1
        self.cross_validation.update(loss)
        if self.baseline.count < self.window:
            self.baseline.update(loss)
        self.recent.update(loss)

    def record_validation_example(self, uid: int, item: object, label: float, loss: float) -> None:
        """Add a bandit-collected example to the validation pool."""
        self.validation_pool.append((uid, item, label, loss))
        self.validation_loss.update(loss)

    def is_stale(self, ratio: float, min_observations: int) -> bool:
        """Whether recent loss exceeds ``ratio`` times the baseline."""
        if self.observations < min_observations:
            return False
        if self.baseline.count < self.window or not self.recent.full:
            return False
        baseline_mean = max(self.baseline.mean, 1e-12)
        return self.recent.mean > ratio * baseline_mean

    def reset_after_retrain(self) -> None:
        """New model, new baseline; the validation pool is retained (it
        is model-independent data)."""
        self.baseline = StreamingMeanVar()
        self.recent = WindowedMean(self.window)
        self.observations = 0


@dataclass(frozen=True)
class _RetrainSnapshot:
    """Everything the offline phase consumes, captured at trigger time."""

    model: object
    offset: int
    observations: list
    weights: dict
    hot_features: list
    hot_predictions: list


class RetrainHandle:
    """Tracks one background retrain (see ``retrain_async``)."""

    def __init__(self, model_name: str):
        self.model_name = model_name
        self._done = threading.Event()
        self._event: "RetrainEvent | None" = None
        self._error: BaseException | None = None

    def _finish(self, event, error) -> None:
        self._event = event
        self._error = error
        self._done.set()

    def done(self) -> bool:
        """Whether the background retrain has finished (either way)."""
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> "RetrainEvent":
        """Block until the retrain completes; re-raises its failure."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"background retrain of {self.model_name!r} still running"
            )
        if self._error is not None:
            raise self._error
        return self._event


@dataclass(frozen=True)
class RetrainEvent:
    """One completed offline retrain."""

    model_name: str
    new_version: int
    observations_used: int
    reason: str
    caches_repopulated: int
    #: observations actually trained on when the sampling engine was
    #: used (None = full log).
    sampled_observations: int | None = None
    #: wall-clock seconds the offline batch job took (train only, not
    #: the swap/cache repopulation).
    batch_seconds: float | None = None
    #: scheduler stages the batch job executed.
    batch_stages: int | None = None
    #: fraction of worker-seconds those stages spent computing (see
    #: :class:`repro.batch.StageProfile`).
    batch_utilization: float | None = None


@dataclass(frozen=True)
class ObserveResult:
    """What one ``observe`` call did."""

    loss: float
    prediction_before_update: float
    retrained: bool
    node_id: int


class ModelManager:
    """Orchestrates models' online updates, evaluation, and retraining."""

    def __init__(
        self,
        registry: ModelRegistry,
        cluster,
        service,
        batch_context,
        config: VeloxConfig,
        auto_retrain: bool = True,
    ):
        self.registry = registry
        self.cluster = cluster
        self.service = service
        self.batch_context = batch_context
        self.config = config
        self.auto_retrain = auto_retrain
        self.updater = make_updater(config.online_update_method)
        self.health: dict[str, ModelHealth] = {}
        self.averagers: dict[str, UserWeightAverager] = {}
        self.udf_warnings: dict[str, list[str]] = {}
        self.retrain_events: list[RetrainEvent] = []
        self._retraining = False
        self._async_retraining: set[str] = set()
        # Serializes the read-modify-write of user state and the model
        # swap: the front-end server is threaded, and two concurrent
        # observes for the same user must not lose an update. Predictions
        # stay lock-free (they only read).
        self._write_lock = RLock()

    # -- deployment -------------------------------------------------------

    def add_model(
        self,
        model: VeloxModel,
        initial_user_weights: dict[int, np.ndarray] | None = None,
        seed_observations: list[Observation] | None = None,
        note: str = "initial deployment",
    ) -> None:
        """Deploy a model: register it, create its user-state table and
        observation log, and install any offline-trained user weights.

        ``seed_observations`` writes the historical training data into the
        model's observation log, so later offline retraining sees "all the
        available training data" (paper Section 4.2) rather than only the
        feedback collected since deployment.
        """
        self.registry.register(model, note=note)
        # Advisory UDF inspection (paper Section 6): flag retrain
        # procedures that look nondeterministic or stateful.
        from repro.core.udf_inspect import check_retrain_udf

        self.udf_warnings[model.name] = check_retrain_udf(model.retrain)
        store = self.cluster.store
        table = store.create_table(
            self._state_table_name(model.name),
            num_partitions=self.cluster.num_nodes,
            partitioner=self.cluster.user_partitioner,
            value_policy=self._user_weight_policy(model),
        )
        log = store.create_log(self._log_name(model.name))
        self.health[model.name] = ModelHealth(window=self.config.staleness_window)
        averager = UserWeightAverager(model.dimension)
        self.averagers[model.name] = averager
        if initial_user_weights:
            self._install_user_weights(
                model, table, averager, initial_user_weights
            )
        if seed_observations:
            for observation in seed_observations:
                log.append(observation)

    def _user_weight_policy(self, model: VeloxModel) -> SlabPolicy | None:
        """The storage policy for a model's user-state table.

        ``user_weight_store="slab"`` keeps pristine (never-observed)
        user states as contiguous slab rows via the lossless
        :class:`~repro.core.online.UserStateCodec`; observed states stay
        dict-resident objects. ``"dict"`` keeps the historical layout.
        """
        if self.config.user_weight_store != "slab":
            return None
        return SlabPolicy(
            model.dimension,
            codec=UserStateCodec(model.dimension, self.config.regularization),
        )

    def _install_user_weights(
        self, model, table, averager, user_weights
    ) -> None:
        """Install offline-trained user weights as fresh pristine states.

        Slab-backed tables take the bulk path: one columnar load per
        partition (a single journaled record) instead of a per-user
        encode/journal/put.
        """
        if table.value_policy is not None and table.value_policy.rank == model.dimension:
            if isinstance(user_weights, ArrayMapping):
                ids, matrix = user_weights.arrays()
                ids = np.asarray(ids, dtype=np.int64)
                matrix = np.asarray(matrix, dtype=float)
            else:
                ids = np.fromiter(
                    user_weights.keys(), dtype=np.int64, count=len(user_weights)
                )
                matrix = np.array(
                    [np.asarray(w, float) for w in user_weights.values()]
                )
            if matrix.shape != (len(ids), model.dimension):
                raise ValidationError(
                    f"user weights must be ({len(ids)}, {model.dimension}), "
                    f"got {matrix.shape}"
                )
            table.load_weight_rows(ids, matrix)
            for uid, row in zip(ids.tolist(), matrix):
                averager.update(uid, row)
            return
        for uid, weights in user_weights.items():
            state = self._make_state(model, np.asarray(weights, float))
            table.put(uid, state)
            averager.update(uid, state.weights)

    def user_state_table(self, model_name: str):
        """The store table holding this model's per-user states."""
        return self.cluster.store.table(self._state_table_name(model_name))

    def observation_log(self, model_name: str):
        """The durable observation log for this model."""
        return self.cluster.store.log(self._log_name(model_name))

    def averager(self, model_name: str) -> UserWeightAverager:
        """The bootstrap weight averager for this model."""
        return self.averagers[model_name]

    # -- feedback ingestion (Listing 1's observe) ------------------------------

    def observe(
        self,
        model_name: str,
        uid: int,
        x: object,
        y: float,
        validation: bool = False,
    ) -> ObserveResult:
        """Ingest one labelled observation.

        Appends to the durable observation log, applies the online
        user-weight update on the owning node, updates quality metrics,
        and (when ``auto_retrain``) triggers offline retraining if the
        model has gone stale. ``validation=True`` marks observations
        collected through bandit exploration — they update the model but
        also land in the unbiased validation pool (paper Section 4.3).
        """
        if not np.isfinite(y):
            raise ValidationError(f"label must be finite, got {y}")
        with self._write_lock:
            return self._observe_locked(model_name, uid, x, y, validation)

    def _user_table_op(self, fn):
        """Run one user-state table read/write, retrying once after
        follower promotion.

        Keeps online weight updates flowing during a node failure: a
        :class:`PartitionError` is reported to the replication layer
        (promoting a follower immediately) and the operation retried —
        the promoted view journals the write, so the durable journal
        stays the single source of truth. Wrapping the individual table
        operation (not the whole observe) keeps the observation-log
        append exactly-once across the retry.
        """
        try:
            return fn()
        except PartitionError:
            from repro.replication.manager import report_dead_nodes

            if not report_dead_nodes(self.cluster):
                raise
            return fn()

    def _observe_locked(
        self, model_name: str, uid: int, x: object, y: float, validation: bool
    ) -> ObserveResult:
        model = self.registry.get(model_name)
        node = self.cluster.router.route(uid)
        node.stats.observations_applied += 1
        table = self.user_state_table(model_name)
        log = self.observation_log(model_name)

        # Durable append before the in-memory update (recovery replays it).
        log.append(
            Observation(
                uid=uid,
                item_id=self._observation_item_id(x),
                label=float(y),
                item_data=x,
                timestamp=float(len(log)),
            )
        )

        features, _hit, _latency = self.service.get_features(model, x, node.node_id)
        self.cluster.charge_user_access(node.node_id, uid, model.dimension * 8)

        state = self._user_table_op(lambda: table.get_or_default(uid))
        if state is None:
            state = self._bootstrap_state(model, model_name)
        prediction_before = state.predict(features)
        loss = model.loss(y, prediction_before, x, uid)

        health = self.health[model_name]
        health.record(loss)
        if validation:
            health.record_validation_example(uid, x, y, loss)

        self.updater.update(state, features, float(y))
        state.weight_version += 1
        self._user_table_op(lambda: table.put(uid, state))
        self.averagers[model_name].update(uid, state.weights)

        retrained = False
        if (
            self.auto_retrain
            and not self._retraining
            and health.is_stale(
                self.config.staleness_loss_ratio,
                self.config.min_observations_for_staleness,
            )
        ):
            self.retrain_now(model_name, reason="staleness threshold exceeded")
            retrained = True
        return ObserveResult(
            loss=loss,
            prediction_before_update=prediction_before,
            retrained=retrained,
            node_id=node.node_id,
        )

    # -- retraining --------------------------------------------------------------

    def retrain_now(
        self,
        model_name: str,
        reason: str = "manual",
        sample_fraction: float | None = None,
        min_per_user: int = 3,
    ) -> RetrainEvent:
        """Offline retrain on all logged data, then swap + repopulate.

        Follows Section 4.2: the batch job consumes the observation log
        snapshot and current user weights, produces new feature
        parameters and user weights, and the previously-hot cache
        entries are recomputed under the new model before the swap
        completes.

        ``sample_fraction`` routes the snapshot through the sampling
        engine first (stratified by uid, keeping at least
        ``min_per_user`` observations per user): an approximate retrain
        that trades a little accuracy for a much cheaper batch job.
        """
        with self._write_lock:
            self._retraining = True
            try:
                snapshot = self._snapshot_for_retrain(model_name)
                training_set, sampled = self._training_set(
                    snapshot, sample_fraction, min_per_user
                )
                mark = len(self.batch_context.metrics.stage_profiles)
                train_start = time.perf_counter()
                new_model, new_user_weights = snapshot.model.retrain(
                    self.batch_context, training_set, snapshot.weights
                )
                profile = self._batch_profile(
                    mark, time.perf_counter() - train_start
                )
                return self._swap_retrained(
                    model_name, snapshot, new_model, new_user_weights, reason,
                    sampled_observations=sampled,
                    batch_profile=profile,
                )
            finally:
                self._retraining = False

    def _training_set(
        self, snapshot: "_RetrainSnapshot", sample_fraction, min_per_user
    ) -> tuple[list, int | None]:
        if sample_fraction is None:
            return snapshot.observations, None
        from repro.sampling import sample_observations

        sampled = sample_observations(
            snapshot.observations, sample_fraction, min_per_user=min_per_user
        )
        return sampled, len(sampled)

    def retrain_async(self, model_name: str, reason: str = "background") -> "RetrainHandle":
        """Offline retrain in a background thread; serving continues.

        The observation log and user weights are snapshotted now; the
        batch job trains outside the write lock (the paper's offline
        phase runs on the cluster compute framework while the serving
        tier keeps answering queries); the swap + cache repopulation
        acquire the lock only at completion. Online updates that land
        during training adapt the *old* states and are superseded at the
        swap — the same drift the paper accepts between trigger time and
        swap time. One background retrain per model at a time.
        """
        with self._write_lock:
            if model_name in self._async_retraining:
                raise ValidationError(
                    f"a background retrain for {model_name!r} is already running"
                )
            snapshot = self._snapshot_for_retrain(model_name)
            self._async_retraining.add(model_name)
        handle = RetrainHandle(model_name)

        def run() -> None:
            """The background retrain body (train, then locked swap)."""
            try:
                mark = len(self.batch_context.metrics.stage_profiles)
                train_start = time.perf_counter()
                new_model, new_user_weights = snapshot.model.retrain(
                    self.batch_context, snapshot.observations, snapshot.weights
                )
                profile = self._batch_profile(
                    mark, time.perf_counter() - train_start
                )
                with self._write_lock:
                    event = self._swap_retrained(
                        model_name, snapshot, new_model, new_user_weights,
                        reason, batch_profile=profile,
                    )
                handle._finish(event, None)
            except BaseException as err:  # surfaced via handle.wait()
                handle._finish(None, err)
            finally:
                with self._write_lock:
                    self._async_retraining.discard(model_name)

        thread = threading.Thread(
            target=run, name=f"retrain-{model_name}", daemon=True
        )
        thread.start()
        return handle

    def _snapshot_for_retrain(self, model_name: str) -> "_RetrainSnapshot":
        """Capture everything the offline phase needs, under the lock."""
        model = self.registry.get(model_name)
        log = self.observation_log(model_name)
        offset = log.snapshot_offset()
        table = self.user_state_table(model_name)
        if table.value_policy is not None:
            # One columnar copy per partition instead of a per-user
            # object decode + weight copy.
            weights = table.export_weight_matrix()
        else:
            weights = {uid: table.get(uid).weights.copy() for uid in table.keys()}
        return _RetrainSnapshot(
            model=model,
            offset=offset,
            observations=log.read_range(0, offset),
            weights=weights,
            hot_features=self.service.cached_feature_items(model_name),
            hot_predictions=self.service.cached_predictions(model_name),
        )

    def _batch_profile(self, mark: int, seconds: float) -> dict:
        """Summarize the scheduler stages a retrain's batch job ran.

        ``mark`` is the stage-profile list length captured before the
        job; everything appended since belongs to this retrain (retrains
        are serialized per context, so the slice is not interleaved).
        """
        profiles = self.batch_context.metrics.stage_profiles[mark:]
        worker_seconds = sum(
            p.wall_seconds * max(1, p.workers) for p in profiles
        )
        busy = sum(p.busy_seconds for p in profiles)
        return {
            "batch_seconds": seconds,
            "batch_stages": len(profiles),
            "batch_utilization": (
                busy / worker_seconds if worker_seconds > 0 else None
            ),
        }

    def _swap_retrained(
        self,
        model_name: str,
        snapshot: "_RetrainSnapshot",
        new_model,
        new_user_weights: dict,
        reason: str,
        sampled_observations: int | None = None,
        batch_profile: dict | None = None,
    ) -> RetrainEvent:
        """Publish the retrained model and repopulate caches (locked)."""
        current = self.registry.get(model_name)
        if new_model.version <= current.version:
            new_model = new_model.with_version(current.version + 1)
        self.registry.publish(
            new_model, trained_on_observations=snapshot.offset, note=reason
        )

        # Install fresh user states; the retrained weights become the
        # prior so subsequent online updates adapt from them. Observed
        # users collapse back into the slab here: the fresh states are
        # pristine again.
        table = self.user_state_table(model_name)
        averager = UserWeightAverager(new_model.dimension)
        self.averagers[model_name] = averager
        self._install_user_weights(new_model, table, averager, new_user_weights)

        repopulated = self._repopulate_caches(
            new_model, snapshot.hot_features, snapshot.hot_predictions, table
        )
        self.health[model_name].reset_after_retrain()
        event = RetrainEvent(
            model_name=model_name,
            new_version=new_model.version,
            observations_used=snapshot.offset,
            reason=reason,
            caches_repopulated=repopulated,
            sampled_observations=sampled_observations,
            **(batch_profile or {}),
        )
        self.retrain_events.append(event)
        return event

    def _repopulate_caches(self, model, hot_features, hot_predictions, table) -> int:
        """Recompute previously-cached entries under the new model.

        Computed-feature cache keys are content digests whose raw inputs
        are gone, so only materialized (item-id-keyed) entries can be
        rebuilt — the same practical limit the paper notes when
        discussing hot-set drift after retraining.
        """
        self.service.invalidate_model(model.name)
        repopulated = 0
        for node_id, item_key in hot_features:
            if isinstance(item_key, (int, np.integer)) and model.materialized:
                if 0 <= int(item_key) < getattr(model, "num_items", 0):
                    self.service.warm_feature_cache(node_id, model, int(item_key))
                    repopulated += 1
        for node_id, uid, item_key in hot_predictions:
            if not (isinstance(item_key, (int, np.integer)) and model.materialized):
                continue
            if not 0 <= int(item_key) < getattr(model, "num_items", 0):
                continue
            state = table.get_or_default(uid)
            if state is None:
                continue
            features = model.features(int(item_key))
            score = float(state.weights @ features)
            self.service.warm_prediction_cache(
                node_id,
                model,
                uid,
                state.weight_version,
                int(item_key),
                score,
                uncertainty=state.uncertainty(features),
            )
            repopulated += 1
        return repopulated

    # -- lifecycle ------------------------------------------------------------------

    def rollback(self, model_name: str, version: int) -> VeloxModel:
        """Revive a historical version (as a new version) and reset
        health tracking; user states are kept (their weights continue to
        adapt online against the revived feature parameters)."""
        revived = self.registry.rollback(model_name, version)
        self.service.invalidate_model(model_name)
        self.health[model_name].reset_after_retrain()
        return revived

    def health_report(self, model_name: str) -> ModelHealth:
        """The live ModelHealth tracker for this model."""
        return self.health[model_name]

    def user_generalization(self, model_name: str, uid: int) -> float:
        """Per-user generalization estimate (paper Section 4.3).

        Exact leave-one-out mean squared error of the user's current
        ridge fit, available when the deployment keeps observation
        history (the normal-equations updater). History-free updaters
        fall back to the user's progressive-validation mean.
        """
        from repro.core.online import cross_validation_score

        state = self.user_state_table(model_name).get(uid)
        if state.feature_history:
            return cross_validation_score(state)
        if state.progressive_loss.count:
            return state.progressive_loss.mean
        raise ValidationError(
            f"user {uid} has no observations to estimate generalization from"
        )

    # -- helpers ----------------------------------------------------------------------

    def _state_table_name(self, model_name: str) -> str:
        return f"user_state:{model_name}"

    def _log_name(self, model_name: str) -> str:
        return f"observations:{model_name}"

    def _make_state(self, model: VeloxModel, weights: np.ndarray) -> UserModelState:
        state = UserModelState(
            dimension=model.dimension,
            regularization=self.config.regularization,
            prior_mean=weights,
        )
        return state

    def _bootstrap_state(self, model: VeloxModel, model_name: str) -> UserModelState:
        averager = self.averagers[model_name]
        if len(averager):
            weights = averager.mean()
        else:
            weights = model.initial_user_weights()
        return self._make_state(model, weights)

    def _observation_item_id(self, x: object) -> int:
        """Best-effort integer item id for the log (non-id inputs get -1;
        the raw input is preserved in ``item_data``)."""
        if isinstance(x, (int, np.integer)):
            return int(x)
        return -1

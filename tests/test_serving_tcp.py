"""TCP server + serving engine integration: concurrency and hardening."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.frontend import (
    PredictApiRequest,
    RemoteClient,
    TopKApiRequest,
    VeloxServer,
    decode_response,
    encode_request,
)
from repro.serving import ServingConfig


class TestEngineOverTcp:
    def test_concurrent_clients_no_drops_no_mismatches(self, deployed_velox):
        """Many clients hammering the batched path: every request gets
        its own correct response back (no drops, no cross-wiring)."""
        engine = deployed_velox.serving_engine(
            ServingConfig(num_workers=2, batching="adaptive", slo_p99=1.0)
        )
        expected = {
            (uid, item): deployed_velox.service.predict("songs", uid, item).score
            for uid in range(8)
            for item in range(10)
        }
        failures = []
        with VeloxServer(deployed_velox, engine=engine) as server:

            def worker(uid: int) -> None:
                try:
                    with RemoteClient(server.host, server.port) as client:
                        for item in range(10):
                            response = client.call(
                                PredictApiRequest(uid=uid, item=item)
                            )
                            assert response.ok, response.error
                            assert response.payload["item"] == item
                            assert response.payload["score"] == pytest.approx(
                                expected[(uid, item)], abs=1e-9
                            )
                except Exception as err:  # collected for the main thread
                    failures.append(err)

            threads = [
                threading.Thread(target=worker, args=(uid,)) for uid in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert failures == []
        completed = sum(
            m.completed for m in engine.queue_metrics().values()
        )
        assert completed == 80

    def test_top_k_over_engine_socket(self, deployed_velox):
        engine = deployed_velox.serving_engine(ServingConfig(num_workers=1))
        with VeloxServer(deployed_velox, engine=engine) as server:
            with RemoteClient(server.host, server.port) as client:
                response = client.call(TopKApiRequest(uid=2, items=(1, 2, 3), k=2))
                assert response.ok
                assert len(response.payload["items"]) == 2

    def test_shed_requests_become_error_envelopes(self, deployed_velox):
        """Admission-control rejection travels the wire as a typed error
        string, not a dead connection."""
        engine = deployed_velox.serving_engine(
            ServingConfig(max_queue_depth=0)
        )
        with VeloxServer(deployed_velox, engine=engine) as server:
            with RemoteClient(server.host, server.port) as client:
                response = client.call(PredictApiRequest(uid=1, item=2))
                assert not response.ok
                assert "OverloadedError" in response.error
                # connection still serves subsequent requests
                response = client.call(TopKApiRequest(uid=1, items=(1,), k=1))
                assert not response.ok  # top_k is shed too (no degrade)
                assert "OverloadedError" in response.error


class TestServerHardening:
    def test_unexpected_exception_keeps_connection_alive(self, deployed_velox):
        """A non-ReproError out of dispatch must produce an error
        envelope on the same connection, not kill it silently."""
        with VeloxServer(deployed_velox) as server:
            client = server._server.velox_client
            original = client.dispatch

            def explode(request):
                if isinstance(request, PredictApiRequest) and request.uid == 666:
                    raise RuntimeError("handler bug")
                return original(request)

            client.dispatch = explode
            try:
                sock = socket.create_connection(
                    (server.host, server.port), timeout=5
                )
                reader = sock.makefile("r")
                sock.sendall(
                    (encode_request(PredictApiRequest(uid=666, item=1)) + "\n").encode()
                )
                response = decode_response(reader.readline())
                assert not response.ok
                assert "RuntimeError" in response.error
                # the line protocol keeps serving
                sock.sendall(
                    (encode_request(PredictApiRequest(uid=1, item=2)) + "\n").encode()
                )
                assert decode_response(reader.readline()).ok
                sock.close()
            finally:
                client.dispatch = original

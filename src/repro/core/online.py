"""Online per-user learning (paper Section 4.2).

The online phase adapts each user's weight vector ``w_u`` as feedback
arrives, exploiting the independence of user weights and the linear
structure of ``prediction(u, x) = w_u^T f(x, θ)`` for conflict-free
per-user updates. Three updaters implement the same interface:

* :class:`NormalEquationsUpdater` — re-solves Eq. 2 from the user's full
  observation history on every update. Cubic in d (plus linear in the
  user's example count); this is exactly what the paper's Figure 3
  measures.
* :class:`ShermanMorrisonUpdater` — maintains ``A^{-1} = (F^T F + λI)^{-1}``
  incrementally via the Sherman–Morrison rank-one formula, giving O(d²)
  updates (the optimization the paper describes). Its covariance doubles
  as the uncertainty source for the LinUCB bandit policy.
* :class:`SgdUpdater` — a stochastic-gradient alternative.

All updaters support a non-zero ridge prior ``w0`` (regularizing toward
``w0`` instead of zero) so that models with structural intercept slots
keep their intercepts under regularization; ``w0 = 0`` recovers Eq. 2
verbatim.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.common.errors import ConfigError, ValidationError
from repro.metrics.streaming import StreamingMeanVar


class UserModelState:
    """Mutable per-user learning state for one model.

    Holds the current weights plus whatever the updater needs to be
    incremental: the full (features, label) history for the normal-
    equations path, and the running ``A^{-1}``/``b`` for Sherman–Morrison.
    Also tracks the cross-validation statistics the manager reads
    (paper Section 4.3: "an additional cross-validation step during
    incremental user weight updates").
    """

    def __init__(
        self,
        dimension: int,
        regularization: float,
        prior_mean: np.ndarray | None = None,
    ):
        if dimension < 1:
            raise ValidationError(f"dimension must be >= 1, got {dimension}")
        if regularization < 0:
            raise ValidationError(
                f"regularization must be >= 0, got {regularization}"
            )
        self.dimension = dimension
        self.regularization = regularization
        self.prior_mean = (
            np.zeros(dimension) if prior_mean is None else np.asarray(prior_mean, float)
        )
        if self.prior_mean.shape != (dimension,):
            raise ValidationError(
                f"prior_mean must have shape ({dimension},), "
                f"got {self.prior_mean.shape}"
            )
        self.weights = self.prior_mean.copy()
        self.observation_count = 0
        # Normal-equations path: full per-user history.
        self.feature_history: list[np.ndarray] = []
        self.label_history: list[float] = []
        # Sherman-Morrison path: A^{-1} and the residual target vector b,
        # where w = w0 + A^{-1} b and A = F^T F + lambda I. A^{-1} is a
        # dense d x d matrix, so it is allocated lazily on first use —
        # serving-only users (reads, no updates) must not pay O(d^2)
        # memory per user.
        self._lam = max(regularization, 1e-12)
        self._a_inv: np.ndarray | None = None
        self.b = np.zeros(dimension)
        # Pre-update (progressive validation) error statistics.
        self.progressive_loss = StreamingMeanVar()
        # Bumped by the manager on every weight update; part of the
        # prediction-cache key so stale per-user entries never hit.
        self.weight_version = 0

    @property
    def a_inv(self) -> np.ndarray:
        """The d x d inverse Gram matrix, allocated on first access."""
        if self._a_inv is None:
            self._a_inv = np.eye(self.dimension) / self._lam
        return self._a_inv

    @a_inv.setter
    def a_inv(self, value: np.ndarray) -> None:
        """The inverse Gram matrix, allocated on first access."""
        self._a_inv = value

    def predict(self, features: np.ndarray) -> float:
        """The current weights' score for a feature vector."""
        return float(self.weights @ features)

    def uncertainty(self, features: np.ndarray) -> float:
        """LinUCB-style confidence width sqrt(f^T A^{-1} f).

        Meaningful when the Sherman–Morrison state is being maintained;
        for other updaters it still reflects the prior covariance. When
        no update has touched this state yet, A = lambda I, so the width
        is computed directly without materializing the matrix.
        """
        if self._a_inv is None:
            return float(np.sqrt(max(0.0, features @ features) / self._lam))
        return float(np.sqrt(max(0.0, features @ self._a_inv @ features)))

    def record_history(self, features: np.ndarray, label: float) -> None:
        """Append one observation to the retained history."""
        self.feature_history.append(features)
        self.label_history.append(label)
        self.observation_count += 1


class PristineServingState:
    """Shared read-only stand-in for slab-resident (pristine) user states.

    Every never-observed user of a model has byte-identical derived
    state — ``weight_version == 0`` and the closed-form prior
    uncertainty — so one shared shim serves fast reads for all of them
    without materializing a :class:`UserModelState` per lookup.
    """

    __slots__ = ("_lam",)

    #: Pristine states have never had a weight update.
    weight_version = 0

    def __init__(self, regularization: float):
        self._lam = max(regularization, 1e-12)

    def uncertainty(self, features: np.ndarray) -> float:
        """Prior confidence width: A = lambda I, no matrix needed."""
        return float(np.sqrt(max(0.0, features @ features) / self._lam))


class UserStateCodec:
    """Lossless slab codec for pristine :class:`UserModelState` values.

    A user state is slab-eligible exactly while nothing but its prior
    mean distinguishes it: no observations, no history, no allocated
    covariance, weights still equal to the prior. Such states round-trip
    through a bare ``(dimension,)`` float64 row — ``decode`` rebuilds an
    equal state from scratch. Anything observed stays an object.
    """

    kind = "user_state"

    def __init__(self, dimension: int, regularization: float):
        self.dimension = int(dimension)
        self.regularization = float(regularization)
        self._serving = PristineServingState(regularization)

    def encode(self, state: object) -> np.ndarray | None:
        """The state's weight row if it is pristine, else ``None``."""
        if type(state) is not UserModelState:
            return None
        if (
            state.dimension != self.dimension
            or state.regularization != self.regularization
            or state.weight_version != 0
            or state.observation_count != 0
            or state.feature_history
            or state.label_history
            or state._a_inv is not None
            or state.progressive_loss.count
        ):
            return None
        weights = state.weights
        if weights.dtype != np.float64 or weights.shape != (self.dimension,):
            return None
        if state.b.any() or not np.array_equal(weights, state.prior_mean):
            return None
        return weights

    def decode(self, vector: np.ndarray) -> UserModelState:
        """An equal pristine state (owns a copy of the row)."""
        return UserModelState(
            self.dimension,
            self.regularization,
            prior_mean=np.array(vector, dtype=float),
        )

    def weights_of(self, value: object) -> np.ndarray | None:
        """The weight row of a dict-resident value, for fast reads."""
        return getattr(value, "weights", None)

    def serving_state(self) -> PristineServingState:
        """The shared shim fast reads of slab rows return as state."""
        return self._serving

    def manifest_info(self) -> dict:
        """JSON-serializable self-description for checkpoint manifests."""
        return {
            "kind": self.kind,
            "dimension": self.dimension,
            "regularization": self.regularization,
        }


class OnlineUpdater(ABC):
    """Updates a :class:`UserModelState` with one observation."""

    #: Whether this updater needs the full per-user history retained.
    keeps_history: bool = True

    @abstractmethod
    def update(self, state: UserModelState, features: np.ndarray, label: float) -> None:
        """Incorporate one (features, label) observation into ``state``."""

    def _validate(self, state: UserModelState, features: np.ndarray, label: float):
        arr = np.asarray(features, dtype=float)
        if arr.shape != (state.dimension,):
            raise ValidationError(
                f"features must have shape ({state.dimension},), got {arr.shape}"
            )
        if not np.all(np.isfinite(arr)) or not np.isfinite(label):
            raise ValidationError("features and label must be finite")
        return arr, float(label)


class NormalEquationsUpdater(OnlineUpdater):
    """Eq. 2 verbatim: re-solve the user's ridge regression from scratch.

    ``w_u <- w0 + (F^T F + λI)^{-1} F^T (Y - F w0)``

    With ``w0 = 0`` this is exactly the paper's update. The solve is
    O(n d² + d³), which is what Figure 3's latency curve measures.
    """

    keeps_history = True

    def update(self, state: UserModelState, features: np.ndarray, label: float) -> None:
        """Incorporate one (features, label) observation (see OnlineUpdater)."""
        arr, y = self._validate(state, features, label)
        # Progressive validation: score the observation before learning it.
        state.progressive_loss.update((y - state.predict(arr)) ** 2)
        state.record_history(arr, y)
        f_matrix = np.vstack(state.feature_history)
        labels = np.asarray(state.label_history, dtype=float)
        gram = f_matrix.T @ f_matrix + state.regularization * np.eye(state.dimension)
        residual = labels - f_matrix @ state.prior_mean
        rhs = f_matrix.T @ residual
        state.weights = state.prior_mean + np.linalg.solve(gram, rhs)
        # Keep the SM state consistent so uncertainty() stays meaningful
        # even if the deployment later switches updaters.
        outer = np.outer(arr, arr)
        denom = 1.0 + float(arr @ state.a_inv @ arr)
        state.a_inv -= (state.a_inv @ outer @ state.a_inv) / denom
        state.b += arr * (y - float(arr @ state.prior_mean))


class ShermanMorrisonUpdater(OnlineUpdater):
    """O(d²) incremental ridge via the Sherman–Morrison formula.

    Maintains ``A^{-1}`` where ``A = F^T F + λI`` and the residual vector
    ``b = F^T (Y - F w0)``; after each rank-one update,
    ``w = w0 + A^{-1} b`` — algebraically identical to the normal
    equations solution at every step.
    """

    keeps_history = False

    def update(self, state: UserModelState, features: np.ndarray, label: float) -> None:
        """Incorporate one (features, label) observation (see OnlineUpdater)."""
        arr, y = self._validate(state, features, label)
        state.progressive_loss.update((y - state.predict(arr)) ** 2)
        state.observation_count += 1
        a_inv_f = state.a_inv @ arr
        denom = 1.0 + float(arr @ a_inv_f)
        state.a_inv -= np.outer(a_inv_f, a_inv_f) / denom
        state.b += arr * (y - float(arr @ state.prior_mean))
        state.weights = state.prior_mean + state.a_inv @ state.b


class SgdUpdater(OnlineUpdater):
    """Stochastic gradient descent on the regularized squared error.

    One gradient step per observation with an inverse-decay learning
    rate. Cheapest (O(d)) but only approximates the ridge solution; the
    accuracy/latency trade-off shows up in the updater comparison tests.
    """

    keeps_history = False

    def __init__(self, learning_rate: float = 0.05, decay: float = 0.01):
        if learning_rate <= 0:
            raise ConfigError(f"learning_rate must be > 0, got {learning_rate}")
        if decay < 0:
            raise ConfigError(f"decay must be >= 0, got {decay}")
        self.learning_rate = learning_rate
        self.decay = decay

    def update(self, state: UserModelState, features: np.ndarray, label: float) -> None:
        """Incorporate one (features, label) observation (see OnlineUpdater)."""
        arr, y = self._validate(state, features, label)
        state.progressive_loss.update((y - state.predict(arr)) ** 2)
        state.observation_count += 1
        rate = self.learning_rate / (1.0 + self.decay * state.observation_count)
        error = state.predict(arr) - y
        gradient = error * arr + state.regularization * (
            state.weights - state.prior_mean
        ) / max(1, state.observation_count)
        state.weights = state.weights - rate * gradient


def leave_one_out_errors(state: UserModelState) -> np.ndarray:
    """Exact leave-one-out residuals of the user's ridge fit, in O(n d²).

    Implements the Section 4.3 "additional cross-validation step during
    incremental user weight updates": for ridge regression the LOO
    residual has the closed form

        e_i = (y_i - f_i . w) / (1 - h_i),   h_i = f_i^T A^{-1} f_i

    so generalization error is assessed without refitting n models.
    Requires the observation history (i.e. the normal-equations
    updater); raises otherwise.
    """
    if not state.feature_history:
        raise ValidationError(
            "leave-one-out needs the observation history; use the "
            "normal_equations updater (history-free updaters support "
            "progressive validation instead)"
        )
    f_matrix = np.vstack(state.feature_history)
    labels = np.asarray(state.label_history, dtype=float)
    residuals = labels - f_matrix @ state.weights
    # Leverage h_i from the maintained inverse Gram matrix.
    leverages = np.einsum("ij,jk,ik->i", f_matrix, state.a_inv, f_matrix)
    leverages = np.clip(leverages, 0.0, 1.0 - 1e-9)
    return residuals / (1.0 - leverages)


def cross_validation_score(state: UserModelState) -> float:
    """Mean squared leave-one-out error — the per-user generalization
    estimate the manager reads for quality evaluation."""
    errors = leave_one_out_errors(state)
    return float(np.mean(errors**2))


def sigmoid(z: np.ndarray | float):
    """Numerically stable logistic function."""
    return np.where(
        np.asarray(z) >= 0,
        1.0 / (1.0 + np.exp(-np.clip(z, -500, 500))),
        np.exp(np.clip(z, -500, 500)) / (1.0 + np.exp(np.clip(z, -500, 500))),
    )


class LogisticUpdater(OnlineUpdater):
    """Per-user online logistic regression for binary feedback.

    The paper notes the error function is "a configuration option" and
    restricts the prototype to squared error; this updater supplies the
    classification counterpart (clicks, skips, thumbs). Each observation
    triggers an L2-regularized IRLS (Newton) re-solve over the user's
    history — the logistic analogue of Eq. 2's exact re-solve — so the
    weights are the true penalized MLE after every update. Labels must
    be 0 or 1; ``state.predict`` then returns the log-odds and
    :meth:`predict_probability` the click probability.
    """

    keeps_history = True

    def __init__(self, newton_iterations: int = 8, tolerance: float = 1e-8):
        if newton_iterations < 1:
            raise ConfigError(
                f"newton_iterations must be >= 1, got {newton_iterations}"
            )
        if tolerance <= 0:
            raise ConfigError(f"tolerance must be > 0, got {tolerance}")
        self.newton_iterations = newton_iterations
        self.tolerance = tolerance

    @staticmethod
    def predict_probability(state: UserModelState, features: np.ndarray) -> float:
        """Sigmoid of the linear score: the click probability."""
        return float(sigmoid(state.predict(features)))

    def update(self, state: UserModelState, features: np.ndarray, label: float) -> None:
        """Incorporate one (features, label) observation (see OnlineUpdater)."""
        arr, y = self._validate(state, features, label)
        if y not in (0.0, 1.0):
            raise ValidationError(
                f"logistic updates need labels in {{0, 1}}, got {y}"
            )
        # Progressive validation in log-loss.
        probability = self.predict_probability(state, arr)
        probability = min(max(probability, 1e-12), 1 - 1e-12)
        log_loss = -(y * np.log(probability) + (1 - y) * np.log(1 - probability))
        state.progressive_loss.update(float(log_loss))
        state.record_history(arr, y)

        f_matrix = np.vstack(state.feature_history)
        labels = np.asarray(state.label_history, dtype=float)
        lam = max(state.regularization, 1e-12)
        weights = state.weights.copy()
        for __ in range(self.newton_iterations):
            logits = f_matrix @ weights
            probabilities = sigmoid(logits)
            gradient = f_matrix.T @ (probabilities - labels) + lam * (
                weights - state.prior_mean
            )
            hessian_weights = probabilities * (1.0 - probabilities)
            hessian = (f_matrix * hessian_weights[:, None]).T @ f_matrix + lam * np.eye(
                state.dimension
            )
            step = np.linalg.solve(hessian, gradient)
            weights = weights - step
            if float(np.max(np.abs(step))) < self.tolerance:
                break
        state.weights = weights
        # Keep the covariance consistent for bandit uncertainty: the
        # logistic posterior's Laplace approximation uses the final
        # Hessian inverse.
        state.a_inv = np.linalg.inv(hessian)


def make_updater(method: str, **kwargs) -> OnlineUpdater:
    """Factory keyed by :class:`~repro.common.VeloxConfig` method names."""
    if method == "normal_equations":
        return NormalEquationsUpdater()
    if method == "sherman_morrison":
        return ShermanMorrisonUpdater()
    if method == "sgd":
        return SgdUpdater(**kwargs)
    if method == "logistic":
        return LogisticUpdater(**kwargs)
    raise ConfigError(f"unknown online update method {method!r}")

"""Columnar slab storage: contiguous numpy partitions for vector values.

The paper's latency story (Section 3) needs user-weight lookups to be
memory-speed, but a dict of boxed per-user objects pays pointer-chasing,
allocator, and per-object header costs on every read, gather, and
snapshot copy. This module stores fixed-rank float vectors columnar
instead: each partition owns one contiguous ``(capacity, rank)`` array
plus a ``key -> row`` index and a free list with amortized-doubling
growth, so

* ``get``/``put`` are row reads/writes into one big array,
* multi-key reads are a single fancy-index gather,
* snapshot export/install is an O(bytes) array copy, and
* per-entry resident memory is ``rank * itemsize`` plus one index slot.

Not every value is a fixed-rank vector, so the slab always rides behind
a :class:`HybridStore`: a :class:`SlabPolicy` decides per value whether
it encodes to a slab row (optionally through a lossless codec — see
``UserStateCodec`` in :mod:`repro.core.online`) or stays a dict-resident
object. Rich values that stop being encodable (a user state once it has
online-learning history) migrate to the dict path transparently, and
collapse back into the slab at the next offline swap.
"""

from __future__ import annotations

import copy
import sys
from collections.abc import Mapping
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

#: Starting row capacity of an empty slab (doubles as it fills).
INITIAL_CAPACITY = 8


class SlabRow(NamedTuple):
    """A slab-encoded value as it appears in journals and on the wire.

    Wrapping the row vector (instead of journaling a bare ndarray) makes
    replay routing unambiguous: a ``SlabRow`` always re-enters the slab,
    while an ndarray that happens to have the right shape but was stored
    as an opaque object value stays on the dict path.
    """

    vector: np.ndarray


class WeightRead(NamedTuple):
    """One fast-path read: the raw weight row plus a state-like object.

    ``state`` is the dict-resident value itself when the key lives on
    the object path, the policy's shared serving shim for slab rows, or
    ``None`` for raw-vector tables (no codec).
    """

    weights: np.ndarray
    state: object


@dataclass
class SlabSnapshot:
    """A consistent columnar copy of a slab: parallel arrays sorted by key."""

    keys: np.ndarray  # (n,) int64
    rows: np.ndarray  # (n, rank)
    versions: np.ndarray  # (n,) int64

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def nbytes(self) -> int:
        """Payload size — what a snapshot transfer actually ships."""
        return self.keys.nbytes + self.rows.nbytes + self.versions.nbytes

    def equals(self, other: "SlabSnapshot") -> bool:
        """Bitwise equality of the exported entries."""
        return (
            np.array_equal(self.keys, other.keys)
            and np.array_equal(self.versions, other.versions)
            and np.array_equal(self.rows, other.rows)
        )

    @classmethod
    def empty(cls, rank: int, dtype=np.float64) -> "SlabSnapshot":
        return cls(
            keys=np.empty(0, dtype=np.int64),
            rows=np.empty((0, rank), dtype=dtype),
            versions=np.empty(0, dtype=np.int64),
        )


@dataclass
class HybridExport:
    """``export_state`` payload of a slab-backed partition.

    The columnar snapshot carries every slab-resident entry; ``objects``
    carries the dict-resident remainder as ``{key: (value, version)}``.
    Every array and object in an export is an owned copy, so installing
    one on a replica is an ownership transfer, not another deep copy.
    """

    slab: SlabSnapshot
    objects: dict

    def __len__(self) -> int:
        return len(self.slab) + len(self.objects)


class SlabPolicy:
    """Per-table storage policy: which values become slab rows.

    A table declares a fixed ``rank`` (row width) and float ``dtype``;
    values encode to rows either directly (bare ``(rank,)`` ndarrays of
    the declared dtype) or through an optional ``codec`` object with
    ``encode(value) -> ndarray | None`` / ``decode(vector) -> value``
    (plus ``weights_of``/``serving_state`` for the fast read path).
    ``encode`` returning ``None`` routes the value to the dict path.
    """

    def __init__(self, rank: int, dtype=np.float64, codec=None):
        if rank < 1:
            raise ValueError(f"slab rank must be >= 1, got {rank}")
        self.rank = int(rank)
        self.dtype = np.dtype(dtype)
        self.codec = codec

    def encode(self, key: object, value: object) -> np.ndarray | None:
        """An owned, read-only row for ``(key, value)`` — or ``None``
        to keep the value on the dict path (slab keys must be ints)."""
        if not isinstance(key, (int, np.integer)):
            return None
        if self.codec is not None:
            vector = self.codec.encode(value)
        elif isinstance(value, np.ndarray):
            vector = value
        else:
            vector = None
        if vector is None:
            return None
        vector = np.asarray(vector)
        if vector.shape != (self.rank,) or vector.dtype != self.dtype:
            return None
        row = np.array(vector, dtype=self.dtype)
        row.flags.writeable = False
        return row

    def decode(self, vector: np.ndarray) -> object:
        """The value a slab row presents as. Codec-less tables present
        the row itself (a read-only view — zero-copy reads are the
        point); codecs reconstruct the original rich value."""
        if self.codec is not None:
            return self.codec.decode(vector)
        return vector

    def serving_state(self) -> object:
        """The shared state shim returned by fast reads of slab rows."""
        if self.codec is not None:
            return self.codec.serving_state()
        return None

    def object_weights(self, value: object) -> np.ndarray | None:
        """The weight row of a dict-resident value, for fast reads."""
        if self.codec is not None:
            return self.codec.weights_of(value)
        return value if isinstance(value, np.ndarray) else None

    def manifest_info(self) -> dict:
        """JSON-serializable description for checkpoint manifests."""
        info = {"rank": self.rank, "dtype": self.dtype.str}
        if self.codec is not None and hasattr(self.codec, "manifest_info"):
            info["codec"] = self.codec.manifest_info()
        return info


class SlabStorage:
    """One partition's columnar store: rows + index + free list.

    Rows live in a single ``(capacity, rank)`` array that doubles when
    full (amortized O(1) growth); per-row versions live in a parallel
    int64 array. Deleted rows go on a LIFO free list and are reused by
    later inserts. Keys are normalized to Python ints.
    """

    __slots__ = ("rank", "dtype", "_rows", "_versions", "_index", "_free",
                 "_high")

    def __init__(self, rank: int, dtype=np.float64,
                 initial_capacity: int = INITIAL_CAPACITY):
        self.rank = int(rank)
        self.dtype = np.dtype(dtype)
        capacity = max(1, int(initial_capacity))
        self._rows = np.zeros((capacity, self.rank), dtype=self.dtype)
        self._versions = np.zeros(capacity, dtype=np.int64)
        self._index: dict[int, int] = {}
        self._free: list[int] = []
        self._high = 0  # rows ever allocated; rows >= _high are untouched

    # -- basic state ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: object) -> bool:
        return key in self._index

    @property
    def capacity(self) -> int:
        """Allocated row slots (live + free + never used)."""
        return len(self._rows)

    def row_of(self, key: object) -> int | None:
        """The physical row index for a key, or None."""
        return self._index.get(key)

    def keys(self) -> list[int]:
        """A snapshot list of live keys (insertion order)."""
        return list(self._index)

    def memory_bytes(self) -> int:
        """Resident bytes: the arrays plus the index dict."""
        return (
            self._rows.nbytes
            + self._versions.nbytes
            + sys.getsizeof(self._index)
            + sys.getsizeof(self._free)
        )

    # -- row allocation ------------------------------------------------

    def _grow(self, minimum: int) -> None:
        """Double capacity (at least to ``minimum``), copying live rows."""
        new_capacity = max(8, self.capacity)
        while new_capacity < minimum:
            new_capacity *= 2
        rows = np.zeros((new_capacity, self.rank), dtype=self.dtype)
        rows[: self._high] = self._rows[: self._high]
        versions = np.zeros(new_capacity, dtype=np.int64)
        versions[: self._high] = self._versions[: self._high]
        self._rows = rows
        self._versions = versions

    def _allocate(self, key: int) -> int:
        if self._free:
            row = self._free.pop()
        else:
            if self._high >= self.capacity:
                self._grow(2 * max(1, self.capacity))
            row = self._high
            self._high += 1
        self._index[key] = row
        return row

    # -- point ops -----------------------------------------------------

    def get(self, key: object):
        """``(read-only row view, version)`` or ``None`` when absent."""
        row = self._index.get(key)
        if row is None:
            return None
        view = self._rows[row]
        view.flags.writeable = False
        return view, int(self._versions[row])

    def version(self, key: object) -> int:
        """The key's current version (0 when absent)."""
        row = self._index.get(key)
        return 0 if row is None else int(self._versions[row])

    def set_at(self, key: object, vector: np.ndarray, version: int) -> None:
        """Write a row at an explicit version (install/replay path)."""
        key = int(key)
        row = self._index.get(key)
        if row is None:
            row = self._allocate(key)
        self._rows[row] = vector
        self._versions[row] = version

    def delete(self, key: object) -> bool:
        """Free a key's row (recycled by later inserts)."""
        row = self._index.pop(key, None)
        if row is None:
            return False
        self._versions[row] = 0
        self._free.append(row)
        return True

    def clear(self) -> None:
        """Drop every entry, retaining allocated capacity."""
        self._index.clear()
        self._free.clear()
        self._versions[: self._high] = 0
        self._high = 0

    # -- bulk ops ------------------------------------------------------

    def gather(self, keys: list) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One fancy-index read of many keys.

        Returns ``(present_mask, matrix, versions)`` where ``matrix``
        holds the rows of present keys in input order (absent keys are
        skipped; ``matrix`` has ``present_mask.sum()`` rows).
        """
        index = self._index
        positions = np.fromiter(
            (index.get(k, -1) for k in keys), dtype=np.intp, count=len(keys)
        )
        present = positions >= 0
        hit = positions[present]
        return present, self._rows[hit], self._versions[hit]

    def export(self) -> SlabSnapshot:
        """A consistent, key-sorted columnar copy of every live entry."""
        n = len(self._index)
        if n == 0:
            return SlabSnapshot.empty(self.rank, self.dtype)
        keys = np.fromiter(self._index.keys(), dtype=np.int64, count=n)
        positions = np.fromiter(self._index.values(), dtype=np.intp, count=n)
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        positions = positions[order]
        return SlabSnapshot(
            keys=keys,
            rows=self._rows[positions],
            versions=self._versions[positions].copy(),
        )

    def load(self, snapshot: SlabSnapshot, replace: bool) -> None:
        """Install a snapshot: wholesale (``replace``) or merged at the
        snapshot's explicit versions."""
        n = len(snapshot)
        if replace:
            self.clear()
            if n == 0:
                return
            if self.capacity < n:
                self._grow(n)
            self._rows[:n] = snapshot.rows
            self._versions[:n] = snapshot.versions
            self._high = n
            self._index = {
                int(k): i for i, k in enumerate(snapshot.keys)
            }
            return
        for i in range(n):
            self.set_at(int(snapshot.keys[i]), snapshot.rows[i],
                        int(snapshot.versions[i]))

    def adopt(self, keys: np.ndarray, rows: np.ndarray,
              versions: np.ndarray) -> None:
        """Take ownership of prepared arrays as the live slab.

        The memory-mapped restore path: ``rows`` may be an
        ``np.load(..., mmap_mode="c")`` array, so recovery maps the file
        instead of copying it and pages materialize copy-on-write as
        rows are read or overwritten. The slab must be empty.
        """
        if self._index:
            raise ValueError("can only adopt arrays into an empty slab")
        n = len(keys)
        if rows.shape != (n, self.rank) or rows.dtype != self.dtype:
            raise ValueError(
                f"adopted rows must be ({n}, {self.rank}) {self.dtype}, "
                f"got {rows.shape} {rows.dtype}"
            )
        self._rows = rows
        self._versions = np.array(versions, dtype=np.int64)
        self._high = n
        self._free = []
        self._index = {int(k): i for i, k in enumerate(keys)}


class HybridStore:
    """``key -> (value, version)`` storage over a slab plus a dict.

    The raw-value layer under :class:`~repro.store.partition.Partition`
    and :class:`~repro.replication.replica.PartitionReplica`: values
    arrive already routed (``SlabRow`` wrappers go columnar, everything
    else is dict-resident) so journal replay, shipping, and snapshot
    install all reproduce the same physical layout on both ends.
    """

    __slots__ = ("policy", "objects", "slab")

    def __init__(self, policy: SlabPolicy | None = None):
        self.policy = policy
        self.objects: dict[object, tuple[object, int]] = {}
        self.slab = (
            SlabStorage(policy.rank, policy.dtype) if policy is not None else None
        )

    # -- basic state ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.objects) + (len(self.slab) if self.slab is not None else 0)

    def __contains__(self, key: object) -> bool:
        if key in self.objects:
            return True
        return self.slab is not None and key in self.slab

    def keys(self) -> list:
        out = list(self.objects)
        if self.slab is not None:
            out.extend(self.slab.keys())
        return out

    def memory_bytes(self) -> int:
        """Approximate resident bytes (slab arrays + container dicts)."""
        total = sys.getsizeof(self.objects)
        if self.slab is not None:
            total += self.slab.memory_bytes()
        return total

    # -- point ops (raw values: SlabRow or object) ---------------------

    def get(self, key: object):
        """``(raw value, version)`` — slab hits come back as SlabRow."""
        entry = self.objects.get(key)
        if entry is not None:
            return entry
        if self.slab is None:
            return None
        hit = self.slab.get(key)
        if hit is None:
            return None
        return SlabRow(hit[0]), hit[1]

    def version(self, key: object) -> int:
        entry = self.objects.get(key)
        if entry is not None:
            return entry[1]
        if self.slab is None:
            return 0
        return self.slab.version(key)

    def set(self, key: object, raw: object, version: int) -> None:
        """Install a routed raw value at an explicit version."""
        if isinstance(raw, SlabRow) and self.slab is not None:
            self.objects.pop(key, None)
            self.slab.set_at(key, raw.vector, version)
            return
        if self.slab is not None:
            self.slab.delete(key)
        value = raw.vector if isinstance(raw, SlabRow) else raw
        self.objects[key] = (value, version)

    def delete(self, key: object) -> bool:
        if self.objects.pop(key, None) is not None:
            return True
        return self.slab is not None and self.slab.delete(key)

    def clear(self) -> None:
        self.objects.clear()
        if self.slab is not None:
            self.slab.clear()

    # -- consistent iteration ------------------------------------------

    def items_raw(self) -> list[tuple[object, object]]:
        """A consistent ``(key, raw value)`` snapshot.

        The slab side is exported in one columnar copy before yielding
        anything, so concurrent mutation (including free-list row reuse)
        cannot change entries mid-iteration.
        """
        out = [(key, value) for key, (value, _v) in self.objects.items()]
        if self.slab is not None and len(self.slab):
            snapshot = self.slab.export()
            out.extend(
                (int(key), SlabRow(row))
                for key, row in zip(snapshot.keys, snapshot.rows)
            )
        return out

    # -- fast weight reads ---------------------------------------------

    def read_weights(self, key: object) -> WeightRead | None:
        """One fast read: no decode, no per-key object construction."""
        if self.slab is not None:
            hit = self.slab.get(key)
            if hit is not None:
                return WeightRead(hit[0], self.policy.serving_state())
        entry = self.objects.get(key)
        if entry is None:
            return None
        value = entry[0]
        weights = (
            self.policy.object_weights(value) if self.policy is not None
            else (value if isinstance(value, np.ndarray) else None)
        )
        if weights is None:
            return None
        state = value if (self.policy is not None and self.policy.codec is not None) else None
        return WeightRead(weights, state)

    def read_weights_many(self, keys: list) -> dict:
        """Fast reads for many keys: one fancy-index gather over the
        slab-resident subset, per-key lookups for the dict remainder."""
        out: dict = {}
        if self.slab is not None and len(self.slab):
            present, matrix, _versions = self.slab.gather(keys)
            shim = self.policy.serving_state()
            hit_row = 0
            for i, key in enumerate(keys):
                if present[i]:
                    out[key] = WeightRead(matrix[hit_row], shim)
                    hit_row += 1
        if self.objects:
            for key in keys:
                if key in out:
                    continue
                read = self.read_weights(key)
                if read is not None:
                    out[key] = read
        return out

    # -- bulk install ---------------------------------------------------

    def prepare_bulk(self, keys, matrix) -> SlabSnapshot:
        """Stage a bulk put: copy rows once, compute next versions.

        Returns the :class:`SlabSnapshot` to journal (one LOAD record);
        apply it with :meth:`bulk_install`. Keys must be unique.
        """
        if self.slab is None:
            raise ValueError("bulk slab loads need a slab-backed store")
        keys = np.asarray(keys, dtype=np.int64)
        rows = np.array(matrix, dtype=self.slab.dtype)
        if rows.shape != (len(keys), self.slab.rank):
            raise ValueError(
                f"bulk rows must be ({len(keys)}, {self.slab.rank}), "
                f"got {rows.shape}"
            )
        versions = np.fromiter(
            (self.version(int(k)) + 1 for k in keys),
            dtype=np.int64, count=len(keys),
        )
        rows.flags.writeable = False
        keys.flags.writeable = False
        versions.flags.writeable = False
        return SlabSnapshot(keys=keys, rows=rows, versions=versions)

    def bulk_install(self, snapshot: SlabSnapshot, replace: bool = False) -> None:
        """Apply a staged/replayed bulk load at its recorded versions."""
        if self.slab is None:
            raise ValueError("bulk slab loads need a slab-backed store")
        if self.objects:
            for key in snapshot.keys:
                self.objects.pop(int(key), None)
        self.slab.load(snapshot, replace=replace)

    # -- export / import ------------------------------------------------

    def export_state(self):
        """An owned copy of the full store.

        Policy-less stores return the classic ``{key: (value, version)}``
        deep copy; slab-backed stores return a :class:`HybridExport`
        whose columnar side is an O(bytes) array copy.
        """
        if self.slab is None:
            return copy.deepcopy(self.objects)
        return HybridExport(
            slab=self.slab.export(),
            objects=copy.deepcopy(self.objects),
        )

    def load_export(self, export, copy_objects: bool) -> None:
        """Replace this store's contents with an export.

        ``copy_objects`` deep-copies the object side (needed when the
        export is retained elsewhere, e.g. a partition snapshot being
        rebuilt from); ownership transfers skip it.
        """
        if isinstance(export, HybridExport):
            if self.slab is None:
                raise ValueError(
                    "cannot install a slab export into a dict-only store"
                )
            self.objects = (
                copy.deepcopy(export.objects) if copy_objects
                else dict(export.objects)
            )
            self.slab.load(export.slab, replace=True)
            return
        self.objects = copy.deepcopy(export) if copy_objects else dict(export)
        if self.slab is not None:
            self.slab.clear()

    def export_weights(self) -> tuple[np.ndarray, np.ndarray]:
        """``(keys, matrix)`` copies of every entry's weight row.

        The bulk read the offline phase consumes: slab entries come out
        in one columnar copy; dict-resident entries are decoded through
        the policy one by one (they are the non-pristine minority).
        """
        if self.policy is None:
            raise ValueError("export_weights needs a slab policy")
        parts_keys = []
        parts_rows = []
        if self.slab is not None and len(self.slab):
            snapshot = self.slab.export()
            parts_keys.append(snapshot.keys)
            parts_rows.append(snapshot.rows)
        if self.objects:
            object_keys = []
            object_rows = []
            for key, (value, _version) in self.objects.items():
                weights = self.policy.object_weights(value)
                if weights is None:
                    continue
                object_keys.append(int(key))
                object_rows.append(np.asarray(weights, dtype=self.policy.dtype))
            if object_keys:
                parts_keys.append(np.asarray(object_keys, dtype=np.int64))
                parts_rows.append(np.stack(object_rows))
        if not parts_keys:
            empty = SlabSnapshot.empty(self.policy.rank, self.policy.dtype)
            return empty.keys, empty.rows
        return np.concatenate(parts_keys), np.concatenate(parts_rows)


class ArrayMapping(Mapping):
    """A read-only ``Mapping`` view over parallel ``(ids, values)`` arrays.

    The zero-materialization replacement for ``{uid: row.copy()}``
    dictionaries: lookups index the backing matrix directly (rows come
    back as views), and the id index is built lazily on first keyed
    access so pure bulk consumers never pay for it.
    """

    __slots__ = ("_ids", "_values", "_position")

    def __init__(self, ids: np.ndarray, values: np.ndarray):
        if len(ids) != len(values):
            raise ValueError(
                f"ids and values must be parallel, got {len(ids)} ids "
                f"and {len(values)} values"
            )
        self._ids = np.asarray(ids)
        self._values = values
        self._position: dict[int, int] | None = None

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The backing ``(ids, values)`` arrays (bulk consumers)."""
        return self._ids, self._values

    def _index(self) -> dict:
        if self._position is None:
            self._position = {int(k): i for i, k in enumerate(self._ids)}
        return self._position

    def __getitem__(self, key):
        position = self._index().get(int(key))
        if position is None:
            raise KeyError(key)
        return self._values[position]

    def __contains__(self, key) -> bool:
        try:
            return int(key) in self._index()
        except (TypeError, ValueError):
            return False

    def __iter__(self):
        return (int(k) for k in self._ids)

    def __len__(self) -> int:
        return len(self._ids)

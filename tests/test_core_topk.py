"""Indexed top-K engines: exactness, agreement, early termination."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.core.topk import BlockedMatrixTopK, NaiveTopK, ThresholdTopK


@pytest.fixture
def matrix(rng):
    return rng.normal(size=(200, 12))


ENGINES = [NaiveTopK, BlockedMatrixTopK, ThresholdTopK]


class TestAgreement:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_matches_brute_force(self, engine_cls, matrix, rng):
        engine = engine_cls(matrix)
        for __ in range(10):
            weights = rng.normal(size=12)
            k = int(rng.integers(1, 15))
            result = engine.top_k(weights, k)
            scores = matrix @ weights
            expected_ids = np.lexsort((np.arange(200), -scores))[:k]
            assert [item for item, __s in result] == expected_ids.tolist()
            for item, score in result:
                assert score == pytest.approx(float(scores[item]))

    def test_all_engines_agree(self, matrix, rng):
        weights = rng.normal(size=12)
        results = [cls(matrix).top_k(weights, 7) for cls in ENGINES]
        for other in results[1:]:
            assert [i for i, __s in other] == [i for i, __s in results[0]]
            for (__i, a), (__j, b) in zip(results[0], other):
                assert a == pytest.approx(b)  # BLAS vs per-row rounding

    def test_descending_order(self, matrix, rng):
        result = BlockedMatrixTopK(matrix).top_k(rng.normal(size=12), 20)
        scores = [s for __i, s in result]
        assert scores == sorted(scores, reverse=True)

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_k_larger_than_catalog(self, engine_cls, rng):
        matrix = rng.normal(size=(5, 3))
        result = engine_cls(matrix).top_k(rng.normal(size=3), 50)
        assert len(result) == 5

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_k_one(self, engine_cls, matrix, rng):
        weights = rng.normal(size=12)
        result = engine_cls(matrix).top_k(weights, 1)
        scores = matrix @ weights
        assert result[0][0] == int(np.argmax(scores))


class TestThresholdAlgorithm:
    def test_early_termination_on_concentrated_weights(self, rng):
        """With weight mass on one dimension, TA certifies top-k after
        touching a fraction of the catalog."""
        matrix = rng.normal(size=(5000, 16))
        engine = ThresholdTopK(matrix)
        weights = np.zeros(16)
        weights[3] = 1.0
        result = engine.top_k(weights, 5)
        assert engine.last_items_scored < 1000
        scores = matrix @ weights
        assert [i for i, __s in result] == np.lexsort(
            (np.arange(5000), -scores)
        )[:5].tolist()

    def test_negative_weights_walk_ascending_lists(self, rng):
        matrix = rng.normal(size=(500, 4))
        engine = ThresholdTopK(matrix)
        weights = np.array([0.0, -2.0, 0.0, 0.0])
        result = engine.top_k(weights, 3)
        scores = matrix @ weights
        assert [i for i, __s in result] == np.lexsort(
            (np.arange(500), -scores)
        )[:3].tolist()
        assert engine.last_items_scored < 250

    def test_zero_weights(self, rng):
        matrix = rng.normal(size=(10, 3))
        result = ThresholdTopK(matrix).top_k(np.zeros(3), 2)
        assert [i for i, __s in result] == [0, 1]
        assert all(s == 0.0 for __i, s in result)


class TestBlocking:
    def test_block_size_does_not_change_results(self, matrix, rng):
        weights = rng.normal(size=12)
        small = BlockedMatrixTopK(matrix, block_rows=7).top_k(weights, 9)
        large = BlockedMatrixTopK(matrix, block_rows=10_000).top_k(weights, 9)
        assert small == large

    def test_invalid_block_rows(self, matrix):
        with pytest.raises(ValidationError):
            BlockedMatrixTopK(matrix, block_rows=0)


class TestFromModel:
    def test_builds_from_materialized_model(self, deployed_velox):
        model = deployed_velox.model()
        engine = BlockedMatrixTopK.from_model(model)
        assert engine.num_items == model.num_items
        assert engine.dimension == model.dimension

    def test_rejects_computed_models(self):
        from repro.core.models import PersonalizedLinearModel

        with pytest.raises(ValidationError):
            BlockedMatrixTopK.from_model(PersonalizedLinearModel("lin", 3))


class TestServiceIntegration:
    def test_top_k_catalog_matches_per_item_serving(self, deployed_velox):
        uid = 3
        indexed = deployed_velox.top_k_catalog(None, uid, k=5)
        model = deployed_velox.model()
        per_item = deployed_velox.top_k(None, uid, list(range(model.num_items)), k=5)
        assert [i for i, __s in indexed] == [i for i, __s in per_item]
        for (i1, s1), (i2, s2) in zip(indexed, per_item):
            assert s1 == pytest.approx(s2)

    def test_engine_cached_per_version(self, deployed_velox):
        deployed_velox.top_k_catalog(None, 1, k=3)
        model = deployed_velox.model()
        key = (model.name, model.version, "BlockedMatrixTopK")
        assert key in deployed_velox.service._topk_engines

    def test_engine_invalidated_on_retrain(self, deployed_velox, small_split):
        deployed_velox.top_k_catalog(None, 1, k=3)
        for r in small_split.stream[:30]:
            deployed_velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
        deployed_velox.retrain()
        old_keys = [
            k
            for k in deployed_velox.service._topk_engines
            if k[1] == 0
        ]
        assert old_keys == []
        # and a fresh catalog query works against the new version
        result = deployed_velox.top_k_catalog(None, 1, k=3)
        assert len(result) == 3


class TestValidation:
    def test_bad_matrix(self):
        with pytest.raises(ValidationError):
            NaiveTopK(np.zeros(5))

    def test_bad_weights_shape(self, matrix):
        with pytest.raises(ValidationError):
            NaiveTopK(matrix).top_k(np.zeros(5), 3)

    def test_bad_k(self, matrix):
        with pytest.raises(ValidationError):
            NaiveTopK(matrix).top_k(np.zeros(12), 0)

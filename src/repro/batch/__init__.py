"""sparklite: a miniature Spark-like batch compute framework.

Velox delegates offline model retraining to "the batch analytics system"
— Spark, driven through opaque UDFs. This subpackage is that substrate,
built from scratch:

* :class:`BatchContext` — the driver entry point (``parallelize``,
  ``from_table``, ``range``),
* :class:`Dataset` — a lazy, partitioned, immutable collection with
  narrow transformations (map, filter, flat_map, map_partitions, union,
  sample, zip_with_index) and wide transformations (reduce_by_key,
  group_by_key, join, cogroup, distinct, repartition, sort_by),
* a DAG scheduler that splits jobs into stages at shuffle boundaries,
  executes tasks per partition (optionally on a thread pool), retries
  failed tasks by lineage recomputation, and supports failure injection
  for the fault-tolerance tests.
"""

from repro.batch.context import BatchContext
from repro.batch.dataset import Dataset
from repro.batch.scheduler import (
    DAGScheduler,
    FailureInjector,
    JobMetrics,
    StageProfile,
)
from repro.batch.shared import Accumulator, Broadcast

__all__ = [
    "BatchContext",
    "Dataset",
    "DAGScheduler",
    "FailureInjector",
    "JobMetrics",
    "StageProfile",
    "Accumulator",
    "Broadcast",
]

"""The chaos injector and the process-wide runtime hook.

:class:`ChaosInjector` turns a declarative
:class:`~repro.chaos.schedule.FaultSchedule` into live decisions at the
injection points compiled into the library (the wire codec, the
event-loop front end, replication, the serving engine, the batch tier).
Every injected fault is recorded as a
:class:`~repro.chaos.schedule.FaultEvent`; :meth:`signature` reduces the
event log to a canonical, interleaving-independent form so two runs of
the same seeded schedule can be compared for exact equality.

Production code consults the injector through the module-level runtime
(:func:`install` / :func:`active` / :func:`fire` / :func:`latency` /
:func:`should`). When nothing is installed — the overwhelmingly common
case — every helper is a single ``None`` check, so the hooks cost
nothing on the hot path.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.chaos.schedule import FaultEvent, FaultSchedule
from repro.common.clock import Clock, SystemClock


class ChaosInjector:
    """Makes (and records) fault decisions for one schedule run.

    Usage::

        schedule = FaultSchedule([FaultRule("wire.drop_response", 0.1)], seed=7)
        injector = ChaosInjector(schedule)
        with chaos.installed(injector):
            ... run the workload ...
        injector.signature()   # canonical injected-fault sequence

    Time windows are measured from the injector's *epoch* — set at
    construction, or reset with :meth:`start` right before the workload
    begins — against the provided clock (a
    :class:`~repro.common.clock.SimulatedClock` makes windows fully
    deterministic in tests).
    """

    def __init__(self, schedule: FaultSchedule, clock: Clock | None = None):
        self.schedule = schedule
        self.clock = clock if clock is not None else SystemClock()
        self._lock = threading.Lock()
        self._epoch = self.clock.now()
        #: consultations per rule (drives unkeyed sequential decisions).
        self._consults: dict[int, int] = {}
        #: faults fired per rule (enforces ``max_faults`` budgets).
        self._fired: dict[int, int] = {}
        self._events: list[FaultEvent] = []

    def start(self) -> "ChaosInjector":
        """Reset the window epoch to now; returns self."""
        with self._lock:
            self._epoch = self.clock.now()
        return self

    @property
    def elapsed(self) -> float:
        """Schedule-relative seconds since the epoch."""
        return max(0.0, self.clock.now() - self._epoch)

    # -- decisions -----------------------------------------------------------

    def fire(self, point: str, key: object = None) -> FaultEvent | None:
        """Consult every rule for ``point``; the first firing rule wins.

        ``key`` makes the decision a pure function of the schedule and
        the key (order- and process-independent); without it, the
        decision indexes the rule's own consultation counter, which is
        deterministic for any single-threaded consultation sequence.
        Returns the recorded event, or ``None`` when no rule fired.
        """
        matches = self.schedule.rules_for(point)
        if not matches:
            return None
        elapsed = self.elapsed
        with self._lock:
            for rule_index, rule in matches:
                count = self._consults.get(rule_index, 0)
                self._consults[rule_index] = count + 1
                if not rule.active_at(elapsed):
                    continue
                fired = self._fired.get(rule_index, 0)
                if rule.max_faults is not None and fired >= rule.max_faults:
                    continue
                decision_key = key if key is not None else count
                uniform, jitter_draw = self.schedule.draw(
                    rule_index, decision_key
                )
                if uniform >= rule.probability:
                    continue
                magnitude = rule.magnitude + rule.jitter * jitter_draw
                event = FaultEvent(
                    point=point,
                    rule_index=rule_index,
                    key=decision_key,
                    magnitude=max(0.0, magnitude),
                )
                self._fired[rule_index] = fired + 1
                self._events.append(event)
                return event
        return None

    def should(self, point: str, key: object = None) -> bool:
        """Boolean convenience around :meth:`fire`."""
        return self.fire(point, key) is not None

    def latency(self, point: str, key: object = None) -> float:
        """Seconds of injected delay (0.0 when no rule fired)."""
        event = self.fire(point, key)
        return event.magnitude if event is not None else 0.0

    # -- the record ----------------------------------------------------------

    @property
    def events(self) -> list[FaultEvent]:
        """Injected faults in firing order (snapshot copy)."""
        with self._lock:
            return list(self._events)

    def event_count(self, point: str | None = None) -> int:
        """Faults injected so far, optionally for one point."""
        with self._lock:
            if point is None:
                return len(self._events)
            return sum(1 for e in self._events if e.point == point)

    def signature(self) -> tuple:
        """Canonical, interleaving-independent fault sequence.

        Events are sorted by ``(point, rule_index, key, magnitude)``, so
        two runs that injected the same set of faults — even if worker
        threads recorded them in different orders — produce equal
        signatures. This is the determinism artifact the chaos ablation
        records and compares across runs.
        """
        with self._lock:
            return tuple(sorted(e.as_tuple() for e in self._events))

    def consultations(self) -> dict[int, int]:
        """Per-rule consultation counts (observability/testing)."""
        with self._lock:
            return dict(self._consults)


def garble(frame: bytes) -> bytes:
    """Deterministically corrupt one frame's payload.

    Flips the first payload byte (the leading value *tag* for every
    request/response codec) to an out-of-range tag, so the receiver
    fails with a typed ``TransportError`` instead of silently decoding
    wrong data. Frames too short to carry a payload are truncated by
    one byte instead, which trips the length check the same way.
    """
    mutated = bytearray(frame)
    if len(mutated) > 13:  # 4B length + 1B opcode + 8B corr id
        mutated[13] ^= 0x7F
        return bytes(mutated)
    return bytes(mutated[:-1])


# -- process-wide runtime ----------------------------------------------------

_active: ChaosInjector | None = None
_install_lock = threading.Lock()


def install(injector: ChaosInjector) -> ChaosInjector:
    """Make ``injector`` the process-wide active injector."""
    global _active
    with _install_lock:
        _active = injector
    return injector


def uninstall() -> None:
    """Deactivate chaos; every hook reverts to a no-op."""
    global _active
    with _install_lock:
        _active = None


def active() -> ChaosInjector | None:
    """The installed injector, or None."""
    return _active


@contextmanager
def installed(injector: ChaosInjector):
    """Scope an injector to a ``with`` block (tests, benchmarks)."""
    install(injector)
    try:
        yield injector
    finally:
        uninstall()


def fire(point: str, key: object = None) -> FaultEvent | None:
    """Module-level :meth:`ChaosInjector.fire`; None when inactive."""
    injector = _active
    if injector is None:
        return None
    return injector.fire(point, key)


def should(point: str, key: object = None) -> bool:
    """Module-level :meth:`ChaosInjector.should`; False when inactive."""
    injector = _active
    if injector is None:
        return False
    return injector.should(point, key)


def latency(point: str, key: object = None) -> float:
    """Module-level :meth:`ChaosInjector.latency`; 0.0 when inactive."""
    injector = _active
    if injector is None:
        return 0.0
    return injector.latency(point, key)

"""StreamPipeline: the micro-batch execution loop."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.streaming.operators import Operator
from repro.streaming.sinks import Sink
from repro.streaming.source import StreamSource


@dataclass
class PipelineMetrics:
    """Counters for one pipeline's lifetime."""
    batches: int = 0
    records_in: int = 0
    records_out: int = 0
    flushed_records: int = 0


@dataclass
class StreamPipeline:
    """source → operators → sinks, executed one micro-batch at a time.

    ``run`` drains the source (optionally capped at ``max_batches``),
    pushes each batch through the operator chain, fans the result out to
    every sink, then flushes stateful operators and closes the sinks.
    """

    source: StreamSource
    operators: list[Operator] = field(default_factory=list)
    sinks: list[Sink] = field(default_factory=list)

    def __post_init__(self):
        if not self.sinks:
            raise ValidationError("pipeline needs at least one sink")
        self.metrics = PipelineMetrics()

    def run(self, max_batches: int | None = None) -> PipelineMetrics:
        """Process until the source ends (or ``max_batches``); returns
        the accumulated metrics. May be called again to continue a
        partially drained source."""
        if max_batches is not None and max_batches < 1:
            raise ValidationError(f"max_batches must be >= 1, got {max_batches}")
        processed = 0
        exhausted = False
        while max_batches is None or processed < max_batches:
            batch = self.source.next_batch()
            if batch is None:
                exhausted = True
                break
            self.metrics.batches += 1
            self.metrics.records_in += len(batch)
            for operator in self.operators:
                batch = operator.process(batch)
            self.metrics.records_out += len(batch)
            for sink in self.sinks:
                sink.write(batch)
            processed += 1

        if exhausted:
            self._flush()
        return self.metrics

    def _flush(self) -> None:
        """Drain stateful operators through the remaining chain, then
        close the sinks."""
        for index, operator in enumerate(self.operators):
            residual = operator.flush()
            if not residual:
                continue
            for downstream in self.operators[index + 1 :]:
                residual = downstream.process(residual)
            self.metrics.flushed_records += len(residual)
            self.metrics.records_out += len(residual)
            for sink in self.sinks:
                sink.write(residual)
        for sink in self.sinks:
            sink.close()

"""Routers: locality, failover, baselines."""

import pytest

from repro.cluster import (
    ModuloPartitioner,
    Node,
    RandomRouter,
    RoundRobinRouter,
    UserAwareRouter,
)
from repro.common.errors import RoutingError


def make_nodes(n: int) -> list[Node]:
    return [Node(i) for i in range(n)]


class TestUserAwareRouter:
    def test_routes_to_owner(self):
        nodes = make_nodes(4)
        router = UserAwareRouter(nodes, ModuloPartitioner(4))
        for uid in range(40):
            assert router.route(uid).node_id == uid % 4

    def test_failover_to_alive_node(self):
        nodes = make_nodes(3)
        router = UserAwareRouter(nodes, ModuloPartitioner(3))
        nodes[1].fail()
        chosen = router.route(1)
        assert chosen.alive
        assert chosen.node_id != 1

    def test_all_dead_raises(self):
        nodes = make_nodes(2)
        router = UserAwareRouter(nodes, ModuloPartitioner(2))
        for node in nodes:
            node.fail()
        with pytest.raises(RoutingError):
            router.route(0)

    def test_partitioner_node_mismatch_rejected(self):
        with pytest.raises(RoutingError):
            UserAwareRouter(make_nodes(3), ModuloPartitioner(4))

    def test_empty_nodes_rejected(self):
        with pytest.raises(RoutingError):
            UserAwareRouter([], ModuloPartitioner(1))


class TestRandomRouter:
    def test_covers_all_nodes(self):
        router = RandomRouter(make_nodes(4), rng=1)
        seen = {router.route(0).node_id for _ in range(200)}
        assert seen == {0, 1, 2, 3}

    def test_skips_dead_nodes(self):
        nodes = make_nodes(3)
        nodes[0].fail()
        router = RandomRouter(nodes, rng=2)
        for _ in range(50):
            assert router.route(0).node_id != 0

    def test_deterministic_given_seed(self):
        a = [RandomRouter(make_nodes(4), rng=7).route(0).node_id for _ in range(1)]
        b = [RandomRouter(make_nodes(4), rng=7).route(0).node_id for _ in range(1)]
        assert a == b


class TestRoundRobinRouter:
    def test_cycles(self):
        router = RoundRobinRouter(make_nodes(3))
        ids = [router.route(99).node_id for _ in range(6)]
        assert ids == [0, 1, 2, 0, 1, 2]

    def test_skips_dead(self):
        nodes = make_nodes(2)
        nodes[0].fail()
        router = RoundRobinRouter(nodes)
        assert all(router.route(0).node_id == 1 for _ in range(4))


class TestNode:
    def test_restart_resets_stats(self):
        node = Node(0)
        node.stats.requests_served = 5
        node.fail()
        assert not node.alive
        node.restart()
        assert node.alive
        assert node.stats.requests_served == 0


class _FakeReplication:
    """Just enough of a ReplicationManager for routing tests."""

    def __init__(self, replica_sets, serving=None):
        self._replica_sets = replica_sets
        self._serving = serving or {}

    def user_replica_set(self, partition):
        return self._replica_sets[partition]

    def serving_node_for_user_partition(self, partition):
        return self._serving.get(partition)


class TestReplicationAwareRouting:
    def test_replica_set_without_replication_is_just_the_owner(self):
        router = UserAwareRouter(make_nodes(3), ModuloPartitioner(3))
        assert router.replica_set(4) == [1]

    def test_replica_set_comes_from_replication_placement(self):
        router = UserAwareRouter(make_nodes(3), ModuloPartitioner(3))
        router.attach_replication(
            _FakeReplication({0: [0, 2], 1: [1, 0], 2: [2, 1]})
        )
        assert router.replica_set(4) == [1, 0]
        assert router.replica_set(5) == [2, 1]

    def test_baseline_routers_do_not_track_replica_sets(self):
        router = RandomRouter(make_nodes(2), rng=0)
        with pytest.raises(RoutingError):
            router.replica_set(0)

    def test_dead_owner_routes_to_promoted_follower(self):
        nodes = make_nodes(3)
        router = UserAwareRouter(nodes, ModuloPartitioner(3))
        router.attach_replication(
            _FakeReplication({1: [1, 2]}, serving={1: 2})
        )
        nodes[1].fail()
        assert router.route(4).node_id == 2

    def test_unpromoted_partition_falls_back_to_any_alive(self):
        nodes = make_nodes(3)
        router = UserAwareRouter(nodes, ModuloPartitioner(3))
        router.attach_replication(_FakeReplication({}, serving={}))
        nodes[1].fail()
        assert router.route(4).alive

    def test_dead_promoted_follower_falls_back(self):
        """A promotion record pointing at a node that also died must not
        route traffic into it."""
        nodes = make_nodes(3)
        router = UserAwareRouter(nodes, ModuloPartitioner(3))
        router.attach_replication(
            _FakeReplication({1: [1, 2]}, serving={1: 2})
        )
        nodes[1].fail()
        nodes[2].fail()
        assert router.route(4).node_id == 0

    def test_alive_owner_ignores_replication(self):
        nodes = make_nodes(3)
        router = UserAwareRouter(nodes, ModuloPartitioner(3))
        router.attach_replication(
            _FakeReplication({1: [1, 2]}, serving={1: 2})
        )
        assert router.route(4).node_id == 1

"""Exception hierarchy for the Velox reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Subsystems raise the most specific subclass available;
nothing in the library raises bare ``Exception`` or returns sentinel
``None`` values for error cases.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class ModelNotFoundError(ReproError):
    """The requested model name (or version) is not registered."""

    def __init__(self, name: str, version: int | None = None):
        self.name = name
        self.version = version
        if version is None:
            super().__init__(f"model {name!r} is not registered")
        else:
            super().__init__(f"model {name!r} has no version {version}")


class UserNotFoundError(ReproError):
    """The requested user has no weight vector and bootstrapping is off."""

    def __init__(self, uid: int):
        self.uid = uid
        super().__init__(f"user {uid} has no weight vector")


class ItemNotFoundError(ReproError):
    """The requested item has no materialized features."""

    def __init__(self, item_id: int):
        self.item_id = item_id
        super().__init__(f"item {item_id} has no materialized features")


class StorageError(ReproError):
    """Base class for storage-layer failures."""


class KeyNotFoundError(StorageError, KeyError):
    """A key was not present in the table.

    Also derives from ``KeyError`` so ``store[key]``-style access behaves
    like a mapping for callers that expect it.
    """

    def __init__(self, table: str, key: object):
        self.table = table
        self.key = key
        StorageError.__init__(self, f"key {key!r} not found in table {table!r}")

    def __str__(self) -> str:  # KeyError.__str__ repr-quotes its arg
        return f"key {self.key!r} not found in table {self.table!r}"


class PartitionError(StorageError):
    """A partition is unavailable, lost, or misaddressed."""


class VersionConflictError(StorageError):
    """An optimistic-concurrency write observed a newer version."""

    def __init__(self, table: str, key: object, expected: int, actual: int):
        self.table = table
        self.key = key
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"version conflict on {table!r}[{key!r}]: "
            f"expected {expected}, found {actual}"
        )


class BatchExecutionError(ReproError):
    """A batch (sparklite) job failed after exhausting retries."""


class TaskFailedError(BatchExecutionError):
    """A single task failed; carries the partition and attempt count."""

    def __init__(self, stage: int, partition: int, attempts: int, cause: BaseException):
        self.stage = stage
        self.partition = partition
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"task for stage {stage} partition {partition} failed "
            f"after {attempts} attempt(s): {cause!r}"
        )

    def __reduce__(self):
        # Default Exception pickling replays ``args`` into ``__init__``,
        # which does not match this signature; forked workers ship task
        # failures back to the driver by pickle, so spell it out.
        return (TaskFailedError, (self.stage, self.partition, self.attempts, self.cause))


class RoutingError(ReproError):
    """A request could not be routed to an owning node."""


class ReplicationError(ReproError):
    """A replication-layer invariant was violated.

    Raised for invalid replica placement (e.g. a replication factor the
    ring cannot satisfy), out-of-order journal shipping, and promotion
    of a replica whose partition still has a live primary.
    """


class StaleModelError(ReproError):
    """An operation referenced a model version that has been retired."""


class ValidationError(ReproError):
    """User-supplied data failed validation (bad shape, NaN, wrong dtype)."""


class TransportError(ReproError):
    """A wire-protocol transport failure (timeout, truncation, close).

    Raised by the socket clients and the framed codec whenever the
    transport — not the application — fails: connect/read/write
    timeouts, a connection closed mid-response, a truncated or oversized
    frame, or a failed protocol negotiation. The raising client closes
    its connection first, so a caller that catches this never holds a
    socket in an unknown half-read state.
    """


class DeadlineExceededError(ReproError):
    """A request's end-to-end deadline budget ran out before service.

    Raised by admission control (the budget was already spent when the
    request reached the queue) and by the pre-compute shed in the
    serving workers (the budget expired while the request waited).
    Requests are only ever shed *before* model compute — a request that
    starts scoring is always completed and delivered, even late — so
    this error means no work was wasted on an answer nobody would wait
    for. Retryable if the caller still holds budget.
    """

    def __init__(self, where: str, detail: str):
        self.where = where
        self.detail = detail
        super().__init__(f"deadline exceeded at {where}: {detail}")


class DegradedError(ReproError):
    """Every rung of the degradation ladder failed for this request.

    The resilient serving path degrades in order — fresh predict,
    cached-only answer, bounded-stale follower read — before giving up;
    this error is the typed bottom rung, raised when even the prediction
    cache has nothing for the key. Callers distinguish it from
    transport/overload errors because retrying will not help until the
    cache warms or the cluster heals.
    """


class CircuitOpenError(ReproError):
    """A circuit breaker is refusing calls to a failing target.

    Raised at pick time — before any network I/O — while the breaker is
    open. Carries when the breaker will next allow a probe so callers
    can route around the target instead of waiting out a timeout.
    """

    def __init__(self, target: str, retry_after: float):
        self.target = target
        self.retry_after = retry_after
        super().__init__(
            f"circuit open for {target!r} (probe in {retry_after:.3f}s)"
        )


class OverloadedError(ReproError):
    """The serving tier shed this request instead of queueing it.

    Raised by admission control when a request queue is at its depth
    bound, and used to fail queued requests whose waiting time exceeded
    the queue's age bound. Callers should treat it as retryable
    backpressure, not a permanent failure.
    """

    def __init__(self, queue: str, reason: str):
        self.queue = queue
        self.reason = reason
        super().__init__(f"queue {queue!r} shed request: {reason}")

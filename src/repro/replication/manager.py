"""The replication manager: placement, journal shipping, failover.

One :class:`ReplicationManager` attaches to a
:class:`~repro.cluster.VeloxCluster` and makes its store fault-tolerant:

* **Placement** — every table partition gets ``replication_factor - 1``
  follower replicas on distinct nodes chosen by a consistent-hash ring
  (:class:`~repro.replication.ring.HashRing`). Primaries stay with the
  partition owner so healthy-path routing is unchanged. All user-weight
  tables (``user_state:*``) share one follower set per partition, so the
  router's failover target is coherent across models.
* **Journal shipping** — followers learn mutations by pulling the
  primary's journal from their last applied sequence. Shipping is
  asynchronous (pumped by the heartbeat tick) with a bound: once a
  partition accumulates ``max_lag_records`` unshipped records, the next
  write ships synchronously. Followers that fall behind the compaction
  horizon are caught up by snapshot transfer.
* **Failure detection and promotion** — a heartbeat
  :class:`~repro.replication.failure.FailureDetector` (plus direct
  failure reports from the serving path) drives automatic promotion:
  each dead node's partitions are delegated to their first alive
  follower, which serves its shipped prefix (reads flagged stale when
  the replica was lagging at promotion) and journals failover-era
  writes so the durable journal stays the single source of truth.
* **Anti-entropy** — when the node restarts, the store recovers it from
  the journal (which now includes failover-era writes), promoted
  replicas are demoted, and replicas the dead node hosted are reset and
  re-shipped from scratch.
"""

from __future__ import annotations

import threading

from repro import chaos
from repro.common.clock import Clock, SystemClock
from repro.common.errors import ReplicationError
from repro.metrics.replication import ReplicationMetrics
from repro.replication.failure import FailureDetector
from repro.replication.replica import PartitionReplica, PromotedPartitionView
from repro.replication.ring import HashRing

#: Prefix marking tables in the user-weight namespace (one shared
#: follower set per partition across models — see module docstring).
USER_NAMESPACE_PREFIX = "user_state:"


def report_dead_nodes(cluster) -> bool:
    """Report every dead node on ``cluster`` to its replication manager.

    The serving path calls this when a read hits a
    :class:`~repro.common.errors.PartitionError`: direct read-failure
    evidence promotes followers immediately instead of waiting out the
    heartbeat timeout. Returns True when at least one affected partition
    now has a promoted serving replica — i.e. retrying the read can
    succeed. Returns False (never raises) without replication.
    """
    replication = getattr(cluster, "replication", None)
    if replication is None:
        return False
    promoted = False
    for node in cluster.nodes:
        if not node.alive:
            promoted = replication.report_read_failure(node.node_id) or promoted
    return promoted


class ReplicationManager:
    """Replicated partitions + failure detection for one cluster."""

    def __init__(
        self,
        cluster,
        replication_factor: int,
        virtual_nodes: int = 64,
        max_lag_records: int = 128,
        heartbeat_interval: float = 0.02,
        heartbeat_timeout: float = 0.1,
        clock: Clock | None = None,
    ):
        if replication_factor < 1:
            raise ReplicationError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        if replication_factor > cluster.num_nodes:
            raise ReplicationError(
                f"replication_factor {replication_factor} exceeds the "
                f"{cluster.num_nodes}-node cluster"
            )
        if max_lag_records < 1:
            raise ReplicationError(
                f"max_lag_records must be >= 1, got {max_lag_records}"
            )
        self.cluster = cluster
        self.replication_factor = replication_factor
        self.max_lag_records = max_lag_records
        self.heartbeat_interval = heartbeat_interval
        self.clock = clock if clock is not None else SystemClock()
        self.ring = HashRing(
            [n.node_id for n in cluster.nodes], virtual_nodes=virtual_nodes
        )
        self.detector = FailureDetector(
            [n.node_id for n in cluster.nodes],
            timeout=heartbeat_timeout,
            clock=self.clock,
        )
        self.metrics = ReplicationMetrics()
        self._lock = threading.RLock()
        #: (table_name, partition_index) -> [PartitionReplica] (followers
        #: in ring preference order; primary is the partition owner).
        self._replicas: dict[tuple[str, int], list[PartitionReplica]] = {}
        #: (table_name, partition_index) -> currently promoted replica.
        self._promoted: dict[tuple[str, int], PartitionReplica] = {}
        #: user-namespace partition -> node id currently serving it via
        #: a promoted follower (router failover lookup).
        self._user_partition_serving: dict[int, int] = {}
        #: partition key -> unshipped records since the last ship.
        self._pending: dict[tuple[str, int], int] = {}
        self._heartbeat_thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        #: Heartbeat rounds run so far (chaos decision keys combine the
        #: tick index with the node id so per-tick faults re-draw).
        self._tick_count = 0
        # Replicate existing tables and subscribe to future ones.
        for name in cluster.store.table_names():
            self._register_table(cluster.store.table(name))
        cluster.store.add_table_listener(self._register_table)

    # -- placement -----------------------------------------------------------

    def _namespace(self, table_name: str) -> str:
        if table_name.startswith(USER_NAMESPACE_PREFIX):
            return "user"
        return f"table:{table_name}"

    def primary_node(self, partition_index: int) -> int:
        """The node owning a partition in the healthy case (co-location:
        partition index modulo cluster size)."""
        return partition_index % self.cluster.num_nodes

    def follower_nodes(self, table_name: str, partition_index: int) -> list[int]:
        """Follower node ids for one partition, in ring order."""
        needed = self.replication_factor - 1
        if needed == 0:
            return []
        primary = self.primary_node(partition_index)
        key = f"{self._namespace(table_name)}:{partition_index}"
        followers = []
        for node_id in self.ring.replicas(key, self.cluster.num_nodes):
            if node_id == primary:
                continue
            followers.append(node_id)
            if len(followers) == needed:
                break
        return followers

    def replica_set(self, table_name: str, partition_index: int) -> list[int]:
        """``[primary, *followers]`` node ids for one partition."""
        return [self.primary_node(partition_index)] + self.follower_nodes(
            table_name, partition_index
        )

    def user_replica_set(self, partition_index: int) -> list[int]:
        """``[primary, *followers]`` for the shared user-weight namespace.

        The router's placement query: every ``user_state:*`` table shares
        one follower set per partition, so this is the candidate node
        list for a user's reads regardless of which model is served.
        """
        return self.replica_set(USER_NAMESPACE_PREFIX, partition_index)

    def _register_table(self, table) -> None:
        with self._lock:
            for index in range(table.num_partitions):
                key = (table.name, index)
                if key in self._replicas:
                    continue
                self._replicas[key] = [
                    PartitionReplica(
                        table.name, index, node_id,
                        value_policy=getattr(table, "value_policy", None),
                    )
                    for node_id in self.follower_nodes(table.name, index)
                ]
                self._pending[key] = 0
                partition = table.partition(index)
                partition.on_mutate = self._make_mutate_hook(key)

    def _make_mutate_hook(self, key: tuple[str, int]):
        def hook(partition) -> None:
            """Bound replica lag: ship once the backlog hits the cap."""
            with self._lock:
                self._pending[key] = self._pending.get(key, 0) + 1
                if self._pending[key] >= self.max_lag_records:
                    self._ship_partition(key)

        return hook

    def replicated_partitions(self) -> list[tuple[str, int]]:
        """Every (table, partition) under replication."""
        with self._lock:
            return sorted(self._replicas)

    # -- journal shipping ----------------------------------------------------

    def ship(self, table_name: str | None = None) -> int:
        """Pump journal records to every follower; returns records shipped.

        The asynchronous replication path: called by the heartbeat tick
        (and synchronously by the write hook when a partition's backlog
        reaches ``max_lag_records``).
        """
        shipped = 0
        with self._lock:
            for key in list(self._replicas):
                if table_name is not None and key[0] != table_name:
                    continue
                shipped += self._ship_partition(key)
        return shipped

    def _ship_partition(self, key: tuple[str, int]) -> int:
        """Ship one partition's journal tail to its followers (locked)."""
        table_name, index = key
        partition = self.cluster.store.table(table_name).partition(index)
        journal = partition.journal
        head = journal.next_sequence
        shipped = 0
        for replica in self._replicas[key]:
            if replica.promoted:
                continue  # serving its own fork; resynced at demotion
            if not self.cluster.nodes[replica.node_id].alive:
                continue  # cannot receive; reset + resync at restart
            lag = replica.lag(head)
            if lag == 0:
                continue
            self.metrics.lag.observe(lag)
            try:
                records = list(journal.replay(replica.applied_sequence))
            except ValueError:
                # The journal compacted past this replica's ack point —
                # the records are gone; fall back to snapshot transfer.
                state, sequence = partition.export_state()
                replica.install_snapshot(state, sequence)
                self.metrics.on_snapshot_transfer()
                shipped += 1
                continue
            for record in records:
                replica.apply(record)
            shipped += len(records)
        self.metrics.on_shipped(shipped)
        self._pending[key] = 0
        return shipped

    def lag_snapshot(self) -> dict[str, dict[int, int]]:
        """``{table: {partition: max follower lag in records}}``."""
        with self._lock:
            out: dict[str, dict[int, int]] = {}
            for (table_name, index), replicas in self._replicas.items():
                partition = self.cluster.store.table(table_name).partition(index)
                head = partition.journal.next_sequence
                worst = max(
                    (r.lag(head) for r in replicas if not r.promoted),
                    default=0,
                )
                out.setdefault(table_name, {})[index] = worst
            return out

    def max_lag(self) -> int:
        """The worst follower lag (records) across every partition."""
        return max(
            (
                lag
                for per_table in self.lag_snapshot().values()
                for lag in per_table.values()
            ),
            default=0,
        )

    # -- failure detection ---------------------------------------------------

    def tick(self, now: float | None = None) -> list[int]:
        """One heartbeat round: collect liveness, detect, promote, ship.

        Alive nodes heartbeat; nodes whose heartbeats go stale past the
        timeout are declared dead and failed over. Returns the nodes
        failed over this tick. Also pumps journal shipping, so replica
        lag is bounded by the tick cadence even without write pressure.
        """
        at = now if now is not None else self.clock.now()
        tick = self._tick_count
        self._tick_count = tick + 1
        inject = chaos.active() is not None
        for node in self.cluster.nodes:
            if not node.alive:
                continue
            if inject and chaos.should(
                "replication.dead_node", key=node.node_id
            ):
                # Injected node kill: the node goes down hard; liveness
                # and failover flow through the normal detection path.
                self.cluster.fail_node(node.node_id)
                continue
            if inject and chaos.should(
                "replication.slow_node", key=(node.node_id, tick)
            ):
                continue  # heartbeat suppressed this tick
            self.detector.heartbeat(node.node_id, at)
        newly_dead = self.detector.check(at)
        for node_id in newly_dead:
            self.fail_over(node_id)
        if inject:
            delay = chaos.latency("replication.ship_delay", key=tick)
            if delay > 0.0:
                self.clock.advance(delay)
        self.ship()
        return newly_dead

    def report_read_failure(self, node_id: int) -> bool:
        """Direct evidence from the serving path that a node is down.

        Fast-path failover: a partition error on a read is treated like
        an expired heartbeat, immediately. Returns True when this report
        triggered (or confirmed) a promotion, so the caller can retry
        the read against the follower.
        """
        self.metrics.on_failure_report()
        if self.cluster.nodes[node_id].alive:
            return False  # node is fine; the error was something else
        if self.detector.report_failure(node_id):
            for dead in self.detector.check():
                self.fail_over(dead)
        with self._lock:
            return any(
                replica.node_id != node_id
                for key, replica in self._promoted.items()
                if self.primary_node(key[1]) == node_id
            )

    # -- promotion / demotion ------------------------------------------------

    def fail_over(self, node_id: int) -> int:
        """Promote followers for everything ``node_id`` was serving.

        Also resets replicas the dead node hosted (its memory is gone;
        they re-ship from scratch once it returns). Returns the number
        of partitions promoted.
        """
        started = self.clock.now()
        promoted = 0
        with self._lock:
            for key, replicas in self._replicas.items():
                table_name, index = key
                # Replicas hosted on the dead node lost their state.
                for replica in replicas:
                    if replica.node_id == node_id and not replica.promoted:
                        replica.reset()
                serving = self._promoted.get(key)
                serving_node = (
                    serving.node_id
                    if serving is not None
                    else self.primary_node(index)
                )
                if serving_node != node_id:
                    continue
                if serving is not None:
                    # The promoted follower died too: drop it and let the
                    # next candidate take over from its shipped prefix.
                    serving.reset()
                    serving.demote()
                    del self._promoted[key]
                if self._promote_partition(key):
                    promoted += 1
        if promoted:
            self.metrics.on_failover()
            self.metrics.promotion_time.record(
                max(0.0, self.clock.now() - started)
            )
        return promoted

    def _promote_partition(self, key: tuple[str, int]) -> bool:
        """Install the first alive follower as the serving copy (locked)."""
        table_name, index = key
        partition = self.cluster.store.table(table_name).partition(index)
        for replica in self._replicas[key]:
            if not self.cluster.nodes[replica.node_id].alive:
                continue
            replica.promote(partition.journal.next_sequence)
            partition.failover = PromotedPartitionView(
                replica, partition.journal,
                value_policy=getattr(partition, "value_policy", None),
            )
            self._promoted[key] = replica
            if self._namespace(table_name) == "user":
                self._user_partition_serving[index] = replica.node_id
            self.metrics.on_promotion()
            return True
        return False

    def on_node_restart(self, node_id: int) -> None:
        """Anti-entropy after a node returns.

        The store has already recovered the node's partitions from their
        journals (which include failover-era writes), so the primary is
        authoritative again: demote its promoted stand-ins, clear
        delegates, and re-ship every follower (the demoted replica's
        fork heals because shipping replays the journal suffix — the
        unshipped tail plus failover writes — in journal order).
        """
        with self._lock:
            for key in list(self._promoted):
                table_name, index = key
                if self.primary_node(index) != node_id:
                    continue
                replica = self._promoted.pop(key)
                replica.demote()
                partition = self.cluster.store.table(table_name).partition(index)
                partition.failover = None
                if self._namespace(table_name) == "user":
                    self._user_partition_serving.pop(index, None)
                self.metrics.on_demotion()
            self.detector.heartbeat(node_id)
            self.ship()

    # -- serving-path queries ------------------------------------------------

    def serving_node_for_user_partition(self, partition_index: int) -> int | None:
        """The node serving a user partition via promotion, or None.

        The router consults this when the partition owner is dead, so
        requests land on the node actually holding the promoted replica.
        """
        if not self._user_partition_serving:  # unlocked hot-path shortcut
            return None
        with self._lock:
            return self._user_partition_serving.get(partition_index)

    def user_read_is_stale(self, partition_index: int) -> bool:
        """Whether user-weight reads for this partition are bounded-stale.

        True while a promoted follower that was lagging at promotion
        serves the partition; counted into the metrics so the recorded
        ablation can report how many responses carried the flag.
        """
        if not self._promoted:  # unlocked hot-path shortcut
            return False
        with self._lock:
            for (table_name, index), replica in self._promoted.items():
                if index != partition_index:
                    continue
                if self._namespace(table_name) != "user":
                    continue
                if replica.promotion_lag > 0:
                    self.metrics.on_stale_read()
                    return True
        return False

    # -- heartbeat loop ------------------------------------------------------

    def start(self) -> "ReplicationManager":
        """Run ``tick`` on a daemon thread every ``heartbeat_interval``."""
        if self._heartbeat_thread is not None:
            raise ReplicationError("heartbeat loop already running")
        self._stop_event.clear()

        def loop() -> None:
            while not self._stop_event.wait(self.heartbeat_interval):
                self.tick()

        self._heartbeat_thread = threading.Thread(
            target=loop, name="replication-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()
        return self

    def stop(self) -> None:
        """Stop the heartbeat loop (no-op when not running)."""
        if self._heartbeat_thread is None:
            return
        self._stop_event.set()
        self._heartbeat_thread.join(timeout=5)
        self._heartbeat_thread = None

    def __enter__(self) -> "ReplicationManager":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

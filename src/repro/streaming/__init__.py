"""A micro-batch stream processor (the BDAS stream-processing layer).

The paper situates Velox inside BDAS, which "contained a data storage
manager, a dataflow execution engine, a stream processor, a sampling
engine" — feedback reaches Velox's ``observe`` through that streaming
layer in a real deployment. This subpackage is a compact, from-scratch
micro-batch processor in the Spark-Streaming mold:

* :class:`IterableSource` / :class:`ReplaySource` — pull-based sources
  yielding micro-batches,
* operators — ``Map``, ``Filter``, ``FlatMap``, and keyed
  :class:`TumblingWindowAggregate` for per-key rollups across batches,
* sinks — :class:`CollectSink`, :class:`CallbackSink`, and
  :class:`VeloxObserveSink`, which feeds labelled interaction records
  straight into a deployed model's online learner,
* :class:`StreamPipeline` — wires source → operators → sinks and runs
  the micro-batch loop with per-batch metrics.
"""

from repro.streaming.source import IterableSource, ReplaySource, StreamSource
from repro.streaming.operators import (
    Filter,
    FlatMap,
    Map,
    Operator,
    TumblingWindowAggregate,
)
from repro.streaming.sinks import CallbackSink, CollectSink, Sink, VeloxObserveSink
from repro.streaming.pipeline import PipelineMetrics, StreamPipeline

__all__ = [
    "StreamSource",
    "IterableSource",
    "ReplaySource",
    "Operator",
    "Map",
    "Filter",
    "FlatMap",
    "TumblingWindowAggregate",
    "Sink",
    "CollectSink",
    "CallbackSink",
    "VeloxObserveSink",
    "StreamPipeline",
    "PipelineMetrics",
]

"""Columnar slab storage: lifecycle, recovery, and dict-path equivalence.

Covers the slab-specific behaviors the classic partition tests cannot
see: free-list row reuse, amortized-doubling growth, out-of-order
version installs, journal recovery rebuilding a bit-identical slab, and
a randomized proof that a slab-backed partition is observationally
equivalent to the historical dict-only partition.
"""

import numpy as np
import pytest

from repro.store import Partition, SlabPolicy, SlabStorage
from repro.store.slab import SlabRow


RANK = 4


def row(seed: float) -> np.ndarray:
    """A deterministic rank-RANK float64 vector."""
    return np.arange(RANK, dtype=np.float64) + seed


def make_partition() -> Partition:
    return Partition(0, value_policy=SlabPolicy(RANK))


class TestSlabStorage:
    def test_free_list_reuses_deleted_rows(self):
        slab = SlabStorage(RANK)
        for key in range(4):
            slab.set_at(key, row(key), 1)
        victim_row = slab.row_of(2)
        assert slab.delete(2)
        assert slab.version(2) == 0
        slab.set_at(99, row(99.0), 1)
        assert slab.row_of(99) == victim_row  # recycled, not appended
        assert len(slab) == 4
        view, version = slab.get(99)
        np.testing.assert_array_equal(view, row(99.0))
        assert version == 1

    def test_growth_across_doubling_boundary_preserves_rows(self):
        slab = SlabStorage(RANK, initial_capacity=2)
        n = 67  # crosses 2 -> 4 -> 8 -> 16 -> 32 -> 64 -> 128
        for key in range(n):
            slab.set_at(key, row(key), key + 1)
        assert slab.capacity >= n
        assert slab.capacity == 128  # doubling, not linear growth
        for key in range(n):
            view, version = slab.get(key)
            np.testing.assert_array_equal(view, row(key))
            assert version == key + 1

    def test_clear_retains_capacity_and_drops_entries(self):
        slab = SlabStorage(RANK)
        for key in range(20):
            slab.set_at(key, row(key), 1)
        capacity = slab.capacity
        slab.clear()
        assert len(slab) == 0 and slab.capacity == capacity
        slab.set_at(0, row(0), 1)
        assert slab.row_of(0) == 0  # high-watermark reset

    def test_gather_skips_absent_keys_in_order(self):
        slab = SlabStorage(RANK)
        for key in (1, 3, 5):
            slab.set_at(key, row(key), key)
        present, matrix, versions = slab.gather([5, 2, 1, 4])
        np.testing.assert_array_equal(present, [True, False, True, False])
        np.testing.assert_array_equal(matrix[0], row(5))
        np.testing.assert_array_equal(matrix[1], row(1))
        np.testing.assert_array_equal(versions, [5, 1])

    def test_get_returns_read_only_view(self):
        slab = SlabStorage(RANK)
        slab.set_at(7, row(7), 1)
        view, _ = slab.get(7)
        with pytest.raises(ValueError):
            view[0] = 123.0


class TestSlabPartition:
    def test_int_vector_values_land_in_the_slab(self):
        part = make_partition()
        part.put(1, row(1))
        assert 1 in part._store.slab
        assert part._store.objects == {}
        value, version = part.get(1)
        np.testing.assert_array_equal(value, row(1))
        assert version == 1

    def test_non_eligible_values_stay_on_the_dict_path(self):
        part = make_partition()
        part.put("name", "not a vector")  # non-int key
        part.put(2, np.zeros(RANK + 1))  # wrong rank
        part.put(3, {"rich": "object"})  # not an ndarray
        assert len(part._store.slab) == 0
        assert set(part._store.objects) == {"name", 2, 3}

    def test_out_of_order_version_installs_survive_recovery(self):
        part = make_partition()
        part.install(1, row(1), 5)
        part.install(1, row(2), 3)  # explicit versions: last write wins
        assert part.get(1)[1] == 3
        part.fail()
        part.recover()
        value, version = part.get(1)
        assert version == 3
        np.testing.assert_array_equal(value, row(2))

    def test_recover_rebuilds_identical_slab(self):
        part = make_partition()
        for key in range(10):
            part.put(key, row(key))
        part.delete(3)
        part.delete(7)
        part.snapshot()
        part.put(20, row(20))  # lands in a free-listed row
        part.put(4, row(40))  # overwrite post-snapshot
        part.delete(9)
        before = part._store.slab.export()
        part.fail()
        replayed = part.recover()
        assert replayed == 3  # the two puts and the delete after snapshot()
        assert part._store.slab.export().equals(before)

    def test_load_rows_is_one_journal_record(self):
        part = make_partition()
        baseline = part.journal_length
        keys = np.arange(100, dtype=np.int64)
        part.load_rows(keys, np.stack([row(k) for k in keys]))
        assert part.journal_length == baseline + 1
        assert len(part) == 100
        value, version = part.get(42)
        np.testing.assert_array_equal(value, row(42))
        assert version == 1

    def test_load_rows_bumps_existing_versions(self):
        part = make_partition()
        part.put(5, row(0))
        part.put(5, row(1))  # version 2
        part.load_rows(np.array([5, 6]), np.stack([row(50), row(60)]))
        assert part.get(5)[1] == 3
        assert part.get(6)[1] == 1

    def test_bulk_load_survives_recovery(self):
        part = make_partition()
        keys = np.arange(50, dtype=np.int64)
        part.load_rows(keys, np.stack([row(k) for k in keys]))
        part.delete(10)
        part.put(10, row(99))
        before = part._store.slab.export()
        part.fail()
        part.recover()
        assert part._store.slab.export().equals(before)


class TestConsistentIteration:
    """Satellite: items()/keys() stay consistent under concurrent mutation."""

    def test_items_snapshot_unaffected_by_free_list_reuse(self):
        part = make_partition()
        for key in range(10):
            part.put(key, row(key))
        it = part.items()
        first = [next(it) for _ in range(3)]
        # Mutate mid-iteration: delete a not-yet-yielded key and insert a
        # new one that recycles its physical slab row with different data.
        part.delete(5)
        part.put(500, row(-123.0))
        seen = dict(first)
        seen.update(dict(it))
        assert set(seen) == set(range(10))  # the pre-mutation key set
        for key in range(10):
            np.testing.assert_array_equal(seen[key], row(key))

    def test_keys_snapshot_unaffected_by_later_mutation(self):
        part = make_partition()
        for key in range(5):
            part.put(key, row(key))
        keys = part.keys()
        part.truncate()
        assert sorted(keys) == list(range(5))

    def test_items_mixes_dict_and_slab_entries(self):
        part = make_partition()
        part.put(1, row(1))
        part.put("meta", {"k": "v"})
        items = dict(part.items())
        assert set(items) == {1, "meta"}
        np.testing.assert_array_equal(items[1], row(1))
        assert items["meta"] == {"k": "v"}


def logical_state(part: Partition) -> dict:
    """Key -> (value-as-bytes, version) irrespective of physical layout."""
    out = {}
    for key in part.keys():
        value, version = part.get(key)
        if isinstance(value, np.ndarray):
            value = value.tobytes()
        out[key] = (value, version)
    return out


def exported_logical(state) -> dict:
    """Flatten a dict or HybridExport export to comparable contents."""
    from repro.store.slab import HybridExport

    out = {}
    if isinstance(state, HybridExport):
        for key, vector, version in zip(
            state.slab.keys, state.slab.rows, state.slab.versions
        ):
            out[int(key)] = (vector.tobytes(), int(version))
        items = state.objects.items()
    else:
        items = state.items()
    for key, (value, version) in items:
        if isinstance(value, SlabRow):
            value = value.vector
        if isinstance(value, np.ndarray):
            value = value.tobytes()
        out[key] = (value, version)
    return out


class TestDictSlabEquivalence:
    """Randomized proof: slab-backed and dict-only partitions are
    observationally identical under the same operation sequence."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_operation_sequences(self, seed):
        rng = np.random.default_rng(seed)
        slab_part = make_partition()
        dict_part = Partition(0)  # no policy: the historical layout
        key_space = list(range(12)) + ["alpha", "beta"]
        for step in range(300):
            op = rng.choice(["put", "delete", "install", "truncate"],
                            p=[0.6, 0.2, 0.15, 0.05])
            key = key_space[rng.integers(len(key_space))]
            if op == "put":
                value = (
                    rng.normal(size=RANK)
                    if isinstance(key, int) and rng.random() < 0.8
                    else f"obj-{step}"
                )
                assert slab_part.put(key, value) == dict_part.put(key, value)
            elif op == "delete":
                assert slab_part.delete(key) == dict_part.delete(key)
            elif op == "install":
                version = int(rng.integers(1, 10))
                value = rng.normal(size=RANK)
                slab_part.install(key, value, version)
                dict_part.install(key, value, version)
            else:
                slab_part.truncate()
                dict_part.truncate()
            if step % 50 == 0:
                assert logical_state(slab_part) == logical_state(dict_part)
        assert logical_state(slab_part) == logical_state(dict_part)
        # Exports carry identical contents despite different containers.
        slab_export, _ = slab_part.export_state()
        dict_export, _ = dict_part.export_state()
        assert exported_logical(slab_export) == exported_logical(dict_export)
        # And both recover to the same state.
        slab_part.fail()
        dict_part.fail()
        slab_part.recover()
        dict_part.recover()
        assert logical_state(slab_part) == logical_state(dict_part)

"""Configuration for the serving engine (queues, batching, shedding)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError

#: The supported batching policies.
BATCHING_POLICIES = ("none", "fixed_delay", "adaptive")


@dataclass(frozen=True)
class ServingConfig:
    """Knobs for one :class:`~repro.serving.ServingEngine`.

    Attributes:
        num_workers: Threads in the shared worker pool draining queues.
        max_queue_depth: Per-queue depth bound; admission control sheds
            requests arriving at a full queue with
            :class:`~repro.common.errors.OverloadedError`.
        max_queue_age: Age bound (seconds): a request that waited longer
            than this is shed at dequeue time instead of served late.
        batching: One of :data:`BATCHING_POLICIES` — ``"none"`` serves
            requests one at a time, ``"fixed_delay"`` lingers a fixed
            window then takes what arrived, ``"adaptive"`` sizes batches
            with AIMD against :attr:`slo_p99`.
        max_batch_size: Upper bound on coalesced batch size.
        batch_delay: How long (seconds) a non-empty queue may linger
            waiting for more requests before a partial batch is formed.
        slo_p99: Per-model p99 end-to-end latency objective (seconds);
            drives AIMD resizing and SLO-attainment accounting.
        aimd_additive_step: Batch-size increase after an SLO-met batch.
        aimd_backoff: Multiplicative batch-size decrease (0, 1) after an
            SLO-violating batch.
        degrade_top_k_on_overload: When True, ``top_k`` requests that
            would be shed are instead served from the prediction cache
            only (possibly returning fewer than k items) — graceful
            degradation instead of rejection.
    """

    num_workers: int = 2
    max_queue_depth: int = 256
    max_queue_age: float = 0.5
    batching: str = "adaptive"
    max_batch_size: int = 64
    batch_delay: float = 0.001
    slo_p99: float = 0.05
    aimd_additive_step: int = 1
    aimd_backoff: float = 0.5
    degrade_top_k_on_overload: bool = False

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ConfigError(f"num_workers must be >= 1, got {self.num_workers}")
        if self.max_queue_depth < 0:
            raise ConfigError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )
        if self.max_queue_age <= 0:
            raise ConfigError(
                f"max_queue_age must be > 0, got {self.max_queue_age}"
            )
        if self.batching not in BATCHING_POLICIES:
            raise ConfigError(
                f"batching must be one of {BATCHING_POLICIES}, "
                f"got {self.batching!r}"
            )
        if self.max_batch_size < 1:
            raise ConfigError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.batch_delay < 0:
            raise ConfigError(f"batch_delay must be >= 0, got {self.batch_delay}")
        if self.slo_p99 <= 0:
            raise ConfigError(f"slo_p99 must be > 0, got {self.slo_p99}")
        if self.aimd_additive_step < 1:
            raise ConfigError(
                f"aimd_additive_step must be >= 1, got {self.aimd_additive_step}"
            )
        if not 0.0 < self.aimd_backoff < 1.0:
            raise ConfigError(
                f"aimd_backoff must be in (0, 1), got {self.aimd_backoff}"
            )

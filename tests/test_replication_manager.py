"""ReplicationManager: placement, journal shipping, promotion, anti-entropy.

These tests drive the manager deterministically: a
:class:`SimulatedClock` and manual ``tick()`` calls stand in for the
heartbeat daemon thread, so promotions happen exactly when the test
advances time (or reports a read failure).
"""

from __future__ import annotations

import pytest

from repro.cluster import VeloxCluster
from repro.common.clock import SimulatedClock
from repro.common.errors import PartitionError, ReplicationError
from repro.replication import (
    PartitionReplica,
    ReplicationManager,
    USER_NAMESPACE_PREFIX,
)
from repro.replication.manager import report_dead_nodes
from repro.store.journal import JournalOp, JournalRecord


NUM_NODES = 4
TABLE = "user_state:songs"


def make_cluster(num_nodes: int = NUM_NODES) -> VeloxCluster:
    cluster = VeloxCluster(num_nodes=num_nodes)
    cluster.store.create_table(
        TABLE, num_partitions=num_nodes, partitioner=cluster.user_partitioner
    )
    return cluster


def make_manager(
    cluster: VeloxCluster, replication_factor: int = 2, **kwargs
) -> tuple[ReplicationManager, SimulatedClock]:
    clock = SimulatedClock()
    manager = ReplicationManager(
        cluster,
        replication_factor=replication_factor,
        heartbeat_timeout=1.0,
        clock=clock,
        **kwargs,
    )
    cluster.attach_replication(manager)
    return manager, clock


@pytest.fixture
def cluster():
    return make_cluster()


class TestValidation:
    def test_replication_factor_bounds(self, cluster):
        with pytest.raises(ReplicationError):
            ReplicationManager(cluster, replication_factor=0)
        with pytest.raises(ReplicationError):
            ReplicationManager(cluster, replication_factor=NUM_NODES + 1)

    def test_max_lag_records_positive(self, cluster):
        with pytest.raises(ReplicationError):
            ReplicationManager(cluster, replication_factor=2, max_lag_records=0)


class TestPlacement:
    def test_followers_distinct_from_primary(self, cluster):
        manager, _ = make_manager(cluster, replication_factor=3)
        for index in range(NUM_NODES):
            primary = manager.primary_node(index)
            followers = manager.follower_nodes(TABLE, index)
            assert len(followers) == 2
            assert primary not in followers
            assert len(set(followers)) == 2

    def test_replica_set_is_primary_then_followers(self, cluster):
        manager, _ = make_manager(cluster)
        for index in range(NUM_NODES):
            assert manager.replica_set(TABLE, index) == [
                manager.primary_node(index)
            ] + manager.follower_nodes(TABLE, index)

    def test_user_namespace_shares_follower_sets(self, cluster):
        """Every user_state:* table agrees on followers per partition, so
        the router has one coherent failover target across models."""
        manager, _ = make_manager(cluster)
        cluster.store.create_table(
            "user_state:other",
            num_partitions=NUM_NODES,
            partitioner=cluster.user_partitioner,
        )
        for index in range(NUM_NODES):
            assert manager.follower_nodes(TABLE, index) == manager.follower_nodes(
                "user_state:other", index
            )
            assert manager.user_replica_set(index) == manager.replica_set(
                USER_NAMESPACE_PREFIX, index
            )

    def test_tables_created_later_get_replicas(self, cluster):
        manager, _ = make_manager(cluster)
        before = manager.replicated_partitions()
        cluster.store.create_table("items", num_partitions=2)
        after = manager.replicated_partitions()
        assert ("items", 0) in after and ("items", 1) in after
        assert set(before) < set(after)

    def test_rf1_means_no_followers(self, cluster):
        manager, _ = make_manager(cluster, replication_factor=1)
        assert manager.follower_nodes(TABLE, 0) == []
        assert manager.replica_set(TABLE, 0) == [0]


class TestShipping:
    def test_ship_copies_values_and_versions(self, cluster):
        manager, _ = make_manager(cluster)
        table = cluster.store.table(TABLE)
        table.put(1, "a")
        table.put(1, "b")  # version 2
        table.put(5, "c")  # same partition (5 % 4 == 1)
        assert manager.ship() == 3
        [replica] = manager._replicas[(TABLE, 1)]
        assert replica.get(1) == ("b", 2)
        assert replica.get(5) == ("c", 1)
        assert manager.max_lag() == 0

    def test_shipping_is_incremental(self, cluster):
        manager, _ = make_manager(cluster)
        table = cluster.store.table(TABLE)
        table.put(2, "x")
        assert manager.ship() == 1
        assert manager.ship() == 0  # nothing new
        table.put(2, "y")
        assert manager.ship() == 1

    def test_write_backlog_ships_synchronously_at_cap(self, cluster):
        """The lag bound: the Nth unshipped write triggers a ship via the
        partition's on_mutate hook — no tick required."""
        manager, _ = make_manager(cluster, max_lag_records=3)
        table = cluster.store.table(TABLE)
        table.put(3, "v1")
        table.put(3, "v2")
        assert manager.max_lag() == 2  # under the cap: still async
        table.put(3, "v3")
        assert manager.max_lag() == 0  # cap hit: shipped in the write path
        [replica] = manager._replicas[(TABLE, 3)]
        assert replica.get(3) == ("v3", 3)

    def test_dead_follower_is_skipped(self, cluster):
        manager, _ = make_manager(cluster)
        table = cluster.store.table(TABLE)
        uid = 0
        [replica] = manager._replicas[(TABLE, 0)]
        cluster.fail_node(replica.node_id)
        table.put(uid, "while-down")
        manager.ship()
        assert replica.applied_sequence == 0  # cannot receive while dead

    def test_compaction_falls_back_to_snapshot_transfer(self, cluster):
        """A follower behind the compaction horizon cannot replay the
        journal (the records are gone) — it gets the full state instead."""
        manager, _ = make_manager(cluster)
        table = cluster.store.table(TABLE)
        table.put(1, "a")
        table.put(5, "b")
        partition = table.partition(1)
        partition.snapshot()  # compacts the journal past the replica's ack
        shipped = manager.ship()
        assert shipped >= 1
        assert manager.metrics.snapshot_transfers == 1
        [replica] = manager._replicas[(TABLE, 1)]
        assert replica.get(1) == ("a", 1)
        assert replica.get(5) == ("b", 1)
        assert replica.applied_sequence == partition.journal.next_sequence
        assert manager.max_lag() == 0

    def test_tick_pumps_shipping(self, cluster):
        manager, clock = make_manager(cluster)
        table = cluster.store.table(TABLE)
        table.put(2, "via-tick")
        assert manager.tick() == []  # nobody died...
        assert manager.max_lag() == 0  # ...but shipping still ran


class TestGaplessApply:
    def test_out_of_order_record_is_rejected(self):
        replica = PartitionReplica("t", 0, node_id=1)
        replica.apply(JournalRecord(0, JournalOp.PUT, "k", "v", 1))
        skipping = JournalRecord(2, JournalOp.PUT, "k", "v2", 2)
        with pytest.raises(ReplicationError):
            replica.apply(skipping)

    def test_reset_restarts_from_zero(self):
        replica = PartitionReplica("t", 0, node_id=1)
        replica.apply(JournalRecord(0, JournalOp.PUT, "k", "v", 1))
        replica.reset()
        assert replica.applied_sequence == 0
        assert len(replica) == 0


class TestFailover:
    def test_heartbeat_timeout_promotes_follower(self, cluster):
        manager, clock = make_manager(cluster)
        table = cluster.store.table(TABLE)
        uid = 1
        table.put(uid, "shipped")
        manager.ship()
        cluster.fail_node(1)
        clock.advance(2.0)
        assert manager.tick() == [1]
        [replica] = manager._replicas[(TABLE, 1)]
        assert manager.serving_node_for_user_partition(1) == replica.node_id
        assert table.get(uid) == "shipped"  # read served by the promotee
        assert manager.metrics.failover_count == 1
        assert manager.metrics.promotion_count >= 1

    def test_fully_shipped_promotion_is_not_stale(self, cluster):
        manager, clock = make_manager(cluster)
        table = cluster.store.table(TABLE)
        table.put(1, "x")
        manager.ship()
        cluster.fail_node(1)
        clock.advance(2.0)
        manager.tick()
        assert manager.user_read_is_stale(1) is False

    def test_lagging_promotion_is_stale(self, cluster):
        manager, clock = make_manager(cluster)
        table = cluster.store.table(TABLE)
        table.put(1, "never-shipped")  # dies before any ship
        cluster.fail_node(1)
        clock.advance(2.0)
        manager.tick()
        assert manager.user_read_is_stale(1) is True
        assert manager.metrics.stale_reads >= 1

    def test_report_read_failure_is_the_fast_path(self, cluster):
        """A PartitionError on the serving path promotes immediately —
        no clock advancement, no heartbeat round."""
        manager, _ = make_manager(cluster)
        table = cluster.store.table(TABLE)
        table.put(1, "v")
        manager.ship()
        assert manager.report_read_failure(1) is False  # node is fine
        cluster.fail_node(1)
        with pytest.raises(PartitionError):
            table.get(1)  # no delegate installed yet: the read fails
        assert manager.report_read_failure(1) is True
        assert table.get(1) == "v"

    def test_report_dead_nodes_without_replication_is_false(self):
        cluster = make_cluster()
        cluster.fail_node(1)
        assert report_dead_nodes(cluster) is False

    def test_report_dead_nodes_promotes_and_confirms(self, cluster):
        manager, _ = make_manager(cluster)
        cluster.store.table(TABLE).put(1, "v")
        manager.ship()
        cluster.fail_node(1)
        assert report_dead_nodes(cluster) is True

    def test_failover_writes_journal_and_restart_reconverges(self, cluster):
        """Writes during failover go journal-first through the promoted
        view, so restarting the primary replays them and every copy
        agrees again."""
        manager, clock = make_manager(cluster)
        table = cluster.store.table(TABLE)
        table.put(1, "before")
        manager.ship()
        cluster.fail_node(1)
        clock.advance(2.0)
        manager.tick()
        table.put(1, "during-failover")  # routed through the delegate
        table.put(5, "new-key")
        replayed = cluster.restart_node(1)
        assert replayed >= 3  # pre-failure write + both failover writes
        partition = table.partition(1)
        assert not partition.failed and partition.failover is None
        assert table.get(1) == "during-failover"
        assert table.get(5) == "new-key"
        assert manager.serving_node_for_user_partition(1) is None
        assert manager.user_read_is_stale(1) is False
        assert manager.metrics.snapshot()["demotions"] >= 1
        assert manager.max_lag() == 0  # anti-entropy re-shipped everyone

    def test_promoted_replica_death_cascades_to_next_follower(self, cluster):
        manager, clock = make_manager(cluster, replication_factor=3)
        table = cluster.store.table(TABLE)
        table.put(1, "v")
        manager.ship()
        first, second = manager.follower_nodes(TABLE, 1)
        cluster.fail_node(1)
        clock.advance(2.0)
        manager.tick()
        assert manager.serving_node_for_user_partition(1) == first
        cluster.fail_node(first)
        clock.advance(2.0)
        manager.tick()
        assert manager.serving_node_for_user_partition(1) == second
        assert table.get(1) == "v"

    def test_dead_nodes_hosted_replicas_reset_and_reship(self, cluster):
        """A follower that dies loses its replica state; once it returns
        the shipping path replays it from scratch."""
        manager, clock = make_manager(cluster)
        table = cluster.store.table(TABLE)
        uid = 0
        [replica] = manager._replicas[(TABLE, 0)]
        table.put(uid, "v")
        manager.ship()
        assert replica.applied_sequence == 1
        cluster.fail_node(replica.node_id)
        clock.advance(2.0)
        manager.tick()
        assert replica.applied_sequence == 0  # its memory is gone
        cluster.restart_node(replica.node_id)
        assert replica.applied_sequence == 1  # re-shipped on restart
        assert replica.get(uid) == ("v", 1)

"""ObservationLog: offsets, range reads, per-user reads."""

import pytest

from repro.store import Observation, ObservationLog


def make_obs(uid: int, item: int, label: float = 1.0) -> Observation:
    return Observation(uid=uid, item_id=item, label=label)


class TestAppend:
    def test_append_returns_offset(self):
        log = ObservationLog()
        assert log.append(make_obs(1, 1)) == 0
        assert log.append(make_obs(1, 2)) == 1

    def test_len(self):
        log = ObservationLog()
        for i in range(5):
            log.append(make_obs(i, i))
        assert len(log) == 5

    def test_snapshot_offset_is_stable_reference(self):
        log = ObservationLog()
        log.append(make_obs(1, 1))
        offset = log.snapshot_offset()
        log.append(make_obs(2, 2))
        assert offset == 1
        assert len(log.read_range(0, offset)) == 1


class TestReads:
    def test_read_range(self):
        log = ObservationLog()
        for i in range(10):
            log.append(make_obs(i, i))
        chunk = log.read_range(3, 6)
        assert [ob.uid for ob in chunk] == [3, 4, 5]

    def test_read_range_open_end(self):
        log = ObservationLog()
        for i in range(4):
            log.append(make_obs(i, i))
        assert [ob.uid for ob in log.read_range(2)] == [2, 3]

    def test_read_all(self):
        log = ObservationLog()
        log.append(make_obs(1, 1))
        assert len(log.read_all()) == 1

    def test_read_range_validation(self):
        log = ObservationLog()
        log.append(make_obs(1, 1))
        with pytest.raises(ValueError):
            log.read_range(-1)
        with pytest.raises(ValueError):
            log.read_range(0, 5)
        with pytest.raises(ValueError):
            log.read_range(1, 0)

    def test_read_range_stop_beyond_tail_names_the_bound(self):
        log = ObservationLog()
        for i in range(3):
            log.append(make_obs(i, i))
        with pytest.raises(ValueError, match="past the end"):
            log.read_range(0, 4)
        # stop exactly at the tail is the boundary, not an error.
        assert len(log.read_range(0, 3)) == 3

    def test_read_range_start_equals_stop_is_empty(self):
        log = ObservationLog()
        for i in range(3):
            log.append(make_obs(i, i))
        assert log.read_range(0, 0) == []
        assert log.read_range(2, 2) == []
        # The empty-tail read a caught-up consumer performs.
        assert log.read_range(3, 3) == []

    def test_read_range_negative_start_rejected(self):
        log = ObservationLog()
        with pytest.raises(ValueError, match="start must be >= 0"):
            log.read_range(-1)
        with pytest.raises(ValueError, match="start must be >= 0"):
            log.read_range(-3, 0)

    def test_by_user(self):
        log = ObservationLog()
        for i in range(6):
            log.append(make_obs(i % 2, i))
        user0 = log.by_user(0)
        assert [ob.item_id for ob in user0] == [0, 2, 4]

    def test_by_user_respects_stop(self):
        log = ObservationLog()
        for i in range(6):
            log.append(make_obs(0, i))
        assert len(log.by_user(0, stop=3)) == 3

    def test_by_user_unknown_uid_is_empty(self):
        log = ObservationLog()
        log.append(make_obs(1, 1))
        assert log.by_user(999) == []

    def test_by_user_stop_validation_matches_read_range(self):
        log = ObservationLog()
        log.append(make_obs(1, 1))
        with pytest.raises(ValueError):
            log.by_user(1, stop=5)
        with pytest.raises(ValueError):
            log.by_user(1, stop=-1)

    def test_observation_is_immutable(self):
        ob = make_obs(1, 2)
        with pytest.raises(AttributeError):
            ob.label = 5.0


class TestUserIndex:
    def test_user_record_count(self):
        log = ObservationLog()
        for i in range(7):
            log.append(make_obs(i % 3, i))
        assert log.user_record_count(0) == 3
        assert log.user_record_count(1) == 2
        assert log.user_record_count(99) == 0

    def test_user_ids(self):
        log = ObservationLog()
        for uid in (5, 2, 5, 9):
            log.append(make_obs(uid, 0))
        assert sorted(log.user_ids()) == [2, 5, 9]

    def test_by_user_agrees_with_full_scan(self):
        log = ObservationLog()
        for i in range(50):
            log.append(make_obs(i % 7, i, label=float(i)))
        for uid in range(7):
            via_index = log.by_user(uid)
            via_scan = [ob for ob in log.read_all() if ob.uid == uid]
            assert via_index == via_scan


class TestListeners:
    def test_listener_sees_offsets_in_order(self):
        log = ObservationLog()
        seen = []
        log.add_listener(lambda off, ob: seen.append((off, ob.item_id)))
        for i in range(4):
            log.append(make_obs(0, i))
        assert seen == [(0, 0), (1, 1), (2, 2), (3, 3)]

    def test_replay_backfills_existing_records(self):
        log = ObservationLog()
        for i in range(3):
            log.append(make_obs(0, i))
        seen = []
        log.add_listener(lambda off, ob: seen.append(off), replay=True)
        log.append(make_obs(0, 3))
        # Backfill covered [0, 3); the subscription carried on from 3.
        assert seen == [0, 1, 2, 3]

    def test_no_replay_sees_only_future_records(self):
        log = ObservationLog()
        log.append(make_obs(0, 0))
        seen = []
        log.add_listener(lambda off, ob: seen.append(off))
        log.append(make_obs(0, 1))
        assert seen == [1]

"""Whole-deployment save/load.

Builds on the store's checkpoint/restore to persist everything a
deployment needs to come back after a full restart: the storage layer
(user states, observation logs), every model's version history, and the
configuration. Bootstrap averagers are *rebuilt* from the restored user
states rather than serialized — they are derived state, and recomputing
them guarantees consistency with whatever the store actually holds.

Layout of a deployment directory::

    <dir>/store/        — the veloxstore checkpoint (see store.persistence)
    <dir>/models.pkl    — registry: every model version + notes
    <dir>/deployment.json — config + default model + format version
"""

from __future__ import annotations

import json
import pickle
from dataclasses import asdict
from pathlib import Path

from repro.common.config import VeloxConfig
from repro.common.errors import StorageError
from repro.store.persistence import checkpoint_store, restore_store

FORMAT_VERSION = 1


def save_deployment(velox, directory: str | Path) -> Path:
    """Persist a deployment; returns the directory path."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    checkpoint_store(velox.cluster.store, path / "store")

    registry_dump = {
        name: [
            {
                "version": record.version,
                "model": record.model,
                "trained_on_observations": record.trained_on_observations,
                "note": record.note,
            }
            for record in velox.registry.history(name)
        ]
        for name in velox.registry.names()
    }
    with open(path / "models.pkl", "wb") as handle:
        pickle.dump(registry_dump, handle)

    config = asdict(velox.config)
    meta = {
        "format_version": FORMAT_VERSION,
        "config": config,
        "default_model": velox._default_model,
        "auto_retrain": velox.manager.auto_retrain,
    }
    with open(path / "deployment.json", "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, default=str)
    return path


def load_deployment(directory: str | Path):
    """Rebuild a :class:`~repro.core.velox.Velox` from a saved directory.

    The cluster fabric (nodes, router, network model) is recreated from
    the saved config; the store is restored with the correct per-table
    partitioners; models and their histories are re-registered; and the
    bootstrap averagers are recomputed from the restored user states.
    """
    from repro.core.velox import Velox
    from repro.core.manager import ModelHealth
    from repro.core.bootstrap import UserWeightAverager
    from repro.batch import BatchContext
    from repro.cluster import NetworkModel, VeloxCluster

    path = Path(directory)
    meta_path = path / "deployment.json"
    if not meta_path.exists():
        raise StorageError(f"no deployment metadata at {meta_path}")
    with open(meta_path, encoding="utf-8") as handle:
        meta = json.load(handle)
    if meta.get("format_version") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported deployment format {meta.get('format_version')!r}"
        )
    config_fields = dict(meta["config"])
    config = VeloxConfig(**config_fields)

    with open(path / "models.pkl", "rb") as handle:
        registry_dump = pickle.load(handle)

    network = NetworkModel(
        hop_latency=config.remote_hop_latency, bandwidth=config.remote_bandwidth
    )
    cluster = VeloxCluster(num_nodes=config.num_nodes, network=network)
    # Restore the store with uid partitioning on every user-state table.
    partitioners = {
        f"user_state:{name}": cluster.user_partitioner for name in registry_dump
    }
    cluster.store = restore_store(path / "store", partitioners=partitioners)
    cluster.store.default_partitions = config.num_nodes

    velox = Velox(
        config,
        cluster,
        BatchContext(default_parallelism=config.num_nodes),
        auto_retrain=meta.get("auto_retrain", True),
    )

    for name, records in registry_dump.items():
        ordered = sorted(records, key=lambda r: r["version"])
        first, rest = ordered[0], ordered[1:]
        velox.registry.register(first["model"], note=first["note"])
        for record in rest:
            velox.registry.publish(
                record["model"],
                trained_on_observations=record["trained_on_observations"],
                note=record["note"],
            )
        # Manager-side wiring the register path would normally create.
        velox.manager.health[name] = ModelHealth(window=config.staleness_window)
        current = velox.registry.get(name)
        averager = UserWeightAverager(current.dimension)
        table = cluster.store.table(f"user_state:{name}")
        for uid, state in table.items():
            averager.update(uid, state.weights)
        velox.manager.averagers[name] = averager

    velox._default_model = meta.get("default_model")
    return velox

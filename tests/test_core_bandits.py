"""Bandit policies: selection math, exploration behavior, factory."""

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.core.bandits import (
    EpsilonGreedyPolicy,
    GreedyPolicy,
    LinUcbPolicy,
    ThompsonSamplingPolicy,
    expected_uncertainty_reduction,
    make_policy,
)
from repro.core.online import ShermanMorrisonUpdater, UserModelState


class TestGreedyPolicy:
    def test_ignores_uncertainty(self):
        policy = GreedyPolicy()
        assert policy.selection_score(2.0, 100.0) == 2.0


class TestLinUcbPolicy:
    def test_adds_scaled_uncertainty(self):
        policy = LinUcbPolicy(alpha=0.5)
        assert policy.selection_score(2.0, 4.0) == pytest.approx(4.0)

    def test_alpha_zero_is_greedy(self):
        policy = LinUcbPolicy(alpha=0.0)
        assert policy.selection_score(2.0, 100.0) == 2.0

    def test_negative_alpha_rejected(self):
        with pytest.raises(ConfigError):
            LinUcbPolicy(alpha=-1.0)

    def test_prefers_uncertain_item_when_scores_tie(self):
        policy = LinUcbPolicy(alpha=1.0)
        certain = policy.selection_score(3.0, 0.1)
        uncertain = policy.selection_score(3.0, 2.0)
        assert uncertain > certain


class TestEpsilonGreedyPolicy:
    def test_epsilon_zero_is_greedy(self):
        policy = EpsilonGreedyPolicy(epsilon=0.0, rng=1)
        assert all(
            policy.selection_score(2.0, 1.0) == 2.0 for _ in range(50)
        )

    def test_epsilon_one_always_randomizes(self):
        policy = EpsilonGreedyPolicy(epsilon=1.0, rng=2)
        scores = {policy.selection_score(2.0, 1.0) for _ in range(20)}
        assert len(scores) > 10  # random every time

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigError):
            EpsilonGreedyPolicy(epsilon=1.5)


class TestThompsonSamplingPolicy:
    def test_zero_uncertainty_returns_score(self):
        policy = ThompsonSamplingPolicy(rng=1)
        assert policy.selection_score(3.0, 0.0) == 3.0

    def test_samples_around_score(self):
        policy = ThompsonSamplingPolicy(scale=1.0, rng=3)
        draws = [policy.selection_score(5.0, 0.5) for _ in range(2000)]
        assert np.mean(draws) == pytest.approx(5.0, abs=0.05)
        assert np.std(draws) == pytest.approx(0.5, abs=0.05)


class TestFactory:
    def test_names(self):
        assert isinstance(make_policy("greedy"), GreedyPolicy)
        assert isinstance(make_policy("linucb"), LinUcbPolicy)
        assert isinstance(make_policy("epsilon_greedy"), EpsilonGreedyPolicy)
        assert isinstance(make_policy("thompson"), ThompsonSamplingPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_policy("ucb1000")


class TestUncertaintyDynamics:
    def test_observation_shrinks_uncertainty_most_along_its_direction(self):
        state = UserModelState(3, regularization=1.0)
        updater = ShermanMorrisonUpdater()
        direction = np.array([1.0, 0.0, 0.0])
        other = np.array([0.0, 1.0, 0.0])
        u_dir_before = state.uncertainty(direction)
        u_other_before = state.uncertainty(other)
        updater.update(state, direction, 1.0)
        assert state.uncertainty(direction) < u_dir_before
        # orthogonal direction unaffected
        assert state.uncertainty(other) == pytest.approx(u_other_before)

    def test_expected_uncertainty_reduction_matches_trace_difference(self):
        state = UserModelState(4, regularization=0.5)
        f = np.array([1.0, -0.5, 2.0, 0.0])
        predicted = expected_uncertainty_reduction(state.a_inv, f)
        before = float(np.trace(state.a_inv))
        ShermanMorrisonUpdater().update(state, f, 1.0)
        after = float(np.trace(state.a_inv))
        assert predicted == pytest.approx(before - after)

    def test_linucb_explores_unseen_items_end_to_end(self, deployed_velox):
        """Feed a user many observations of item 0, then ask for topK over
        {0, fresh items}: LinUCB with large alpha must not pick item 0."""
        uid = 7
        for __ in range(30):
            deployed_velox.observe(uid=uid, x=0, y=5.0)
        model = deployed_velox.model()
        state = deployed_velox.manager.user_state_table("songs").get(uid)
        # The hammered item's direction is now well-determined...
        assert state.uncertainty(model.features(0)) < state.uncertainty(
            model.features(50)
        )
        # ...so a strongly-exploring LinUCB ranks an unseen item first.
        bandit_choice = deployed_velox.top_k(
            None, uid, [0, 50, 51], k=1, policy=LinUcbPolicy(alpha=50.0)
        )[0][0]
        assert bandit_choice in (50, 51)

"""Ablation: efficient top-K engines (paper Section 8 future work).

The paper names "more efficient top-K support for our linear modeling
tasks" as planned work. For materialized linear models, full-catalog
top-K is a matrix-vector product, so the per-item serving loop is pure
overhead. This ablation compares three exact engines on the same
catalog:

* the per-item python loop (baseline),
* one blocked BLAS matmul + argpartition,
* Fagin's Threshold Algorithm with certified early termination
  (wins when user weights concentrate on few dimensions).

Shape assertions: all engines agree exactly; the blocked engine beats
the naive loop by a wide margin; TA touches a small fraction of the
catalog on concentrated weights.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.topk import BlockedMatrixTopK, NaiveTopK, ThresholdTopK
from repro.metrics import LatencyRecorder

from conftest import write_result

NUM_ITEMS = 20_000
DIMENSION = 64
K = 10


@pytest.fixture(scope="module")
def catalog():
    return np.random.default_rng(31).normal(size=(NUM_ITEMS, DIMENSION))


def dense_weights(seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=DIMENSION)


def concentrated_weights(seed: int = 0) -> np.ndarray:
    """All mass on three dimensions — the sparse regime TA exploits
    (every zero dimension drops out of its threshold entirely)."""
    rng = np.random.default_rng(seed)
    weights = np.zeros(DIMENSION)
    for dim in rng.choice(DIMENSION, 3, replace=False):
        weights[dim] = rng.normal(0, 2.0)
    return weights


@pytest.mark.benchmark(max_time=1.0, min_rounds=3)
def test_topk_naive_loop(benchmark, catalog):
    engine = NaiveTopK(catalog)
    benchmark(engine.top_k, dense_weights(), K)


@pytest.mark.benchmark(max_time=1.0, min_rounds=3)
def test_topk_blocked_matmul(benchmark, catalog):
    engine = BlockedMatrixTopK(catalog)
    benchmark(engine.top_k, dense_weights(), K)


@pytest.mark.benchmark(max_time=1.0, min_rounds=3)
def test_topk_threshold_algorithm_concentrated(benchmark, catalog):
    engine = ThresholdTopK(catalog)
    benchmark(engine.top_k, concentrated_weights(), K)


def test_topk_engines_summary(benchmark, catalog):
    trials = 5
    engines = {
        "naive_loop": NaiveTopK(catalog),
        "blocked_matmul": BlockedMatrixTopK(catalog),
        "threshold_algorithm": ThresholdTopK(catalog),
    }
    timings: dict[str, float] = {}
    for name, engine in engines.items():
        recorder = LatencyRecorder()
        for trial in range(trials):
            weights = (
                concentrated_weights(trial)
                if name == "threshold_algorithm"
                else dense_weights(trial)
            )
            with recorder.time():
                engine.top_k(weights, K)
        timings[name] = recorder.summary().mean

    # Exactness across engines on a shared query.
    shared = dense_weights(99)
    reference = engines["naive_loop"].top_k(shared, K)
    for name in ("blocked_matmul", "threshold_algorithm"):
        other = engines[name].top_k(shared, K)
        assert [i for i, __s in other] == [i for i, __s in reference], name

    # TA early termination on a concentrated query.
    ta = engines["threshold_algorithm"]
    ta.top_k(concentrated_weights(7), K)
    touched_fraction = ta.last_items_scored / NUM_ITEMS

    lines = ["engine                mean_query_s   note"]
    lines.append(f"naive_loop            {timings['naive_loop']:<15.6f}per-item python loop")
    lines.append(
        f"blocked_matmul        {timings['blocked_matmul']:<15.6f}"
        f"{timings['naive_loop'] / timings['blocked_matmul']:.0f}x vs naive"
    )
    lines.append(
        f"threshold_algorithm   {timings['threshold_algorithm']:<15.6f}"
        f"touches {touched_fraction * 100:.1f}% of catalog (concentrated w)"
    )
    write_result("ablation_topk_engines", lines)

    assert timings["blocked_matmul"] < timings["naive_loop"] / 10
    assert touched_fraction < 0.3
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Ablation: user-aware routing vs locality-oblivious baselines.

Paper Section 5: partitioning the user-weight table by uid and routing
each request to the owning node "ensures that lookups into W can always
be satisfied locally ... with the beneficial side-effect that all writes
are local." This ablation replays an identical predict+observe stream
under user-aware, random, and round-robin routing and reports remote
user-weight accesses and modeled network latency.

Shape assertions: user-aware routing performs zero remote user-weight
accesses; the baselines perform many (≈ (n-1)/n of them remote).
"""

from __future__ import annotations

import pytest

from repro import Velox, VeloxConfig
from repro.cluster.router import RandomRouter, RoundRobinRouter
from repro.workloads import ObserveRequest, ZipfItemSampler, generate_request_stream

from conftest import write_result

NUM_NODES = 4
NUM_USERS = 64
REQUESTS = 2000

ROUTERS = {
    "user_aware": None,  # the deployment default
    "random": lambda nodes: RandomRouter(nodes, rng=5),
    "round_robin": RoundRobinRouter,
}


def run_routing(name: str) -> dict[str, float]:
    import numpy as np

    rng = np.random.default_rng(0)
    model_dim = 34
    from conftest import build_mf_serving

    if name == "user_aware":
        velox = build_mf_serving(model_dim, 500, num_users=NUM_USERS, num_nodes=NUM_NODES)
    else:
        # Rebuild the same deployment but with a baseline router.
        from repro.core.models import MatrixFactorizationModel

        factors = np.random.default_rng(0).normal(0, 0.1, (500, model_dim - 2))
        model = MatrixFactorizationModel("bench", factors, global_mean=3.5)
        weights = {
            uid: model.pack_user_weights(rng.normal(0, 0.1, model_dim - 2), 0.0)
            for uid in range(NUM_USERS)
        }
        velox = Velox.deploy(
            VeloxConfig(num_nodes=NUM_NODES),
            router_factory=ROUTERS[name],
            auto_retrain=False,
        )
        velox.add_model(model, initial_user_weights=weights)

    sampler = ZipfItemSampler(500, 0.8, rng=9)
    stream = generate_request_stream(
        REQUESTS, NUM_USERS, sampler, observe_fraction=0.2, rng=11
    )
    # Count only user-weight traffic: reset after deployment, and track
    # before/after around each call batch.
    stats = velox.cluster.network.stats
    stats.reset()
    for request in stream:
        if isinstance(request, ObserveRequest):
            velox.observe(uid=request.uid, x=request.item_id, y=request.label)
        else:
            velox.predict(None, request.uid, request.item_id)
    # Item-feature fetches are hash-partitioned and identical across
    # routers in expectation; the differential signal is user access.
    return {
        "remote_accesses": stats.remote_accesses,
        "locality_rate": stats.locality_rate,
        "modeled_latency_s": stats.modeled_latency,
    }


@pytest.mark.parametrize("name", list(ROUTERS))
def test_routing_workload(benchmark, name):
    benchmark.pedantic(run_routing, args=(name,), rounds=1, iterations=1)


def test_routing_summary(benchmark):
    results = {name: run_routing(name) for name in ROUTERS}
    lines = ["router       remote_accesses  locality_rate  modeled_latency_s"]
    for name, row in results.items():
        lines.append(
            f"{name:<13}{row['remote_accesses']:<17d}"
            f"{row['locality_rate']:<15.3f}{row['modeled_latency_s']:.6f}"
        )
    write_result("ablation_routing", lines)

    # User-aware routing: user-weight traffic is all local; the only
    # remote accesses are cold item-feature fetches (bounded by the
    # number of distinct items per node).
    ua = results["user_aware"]
    rnd = results["random"]
    rr = results["round_robin"]
    assert ua["remote_accesses"] < rnd["remote_accesses"]
    assert ua["remote_accesses"] < rr["remote_accesses"]
    assert ua["modeled_latency_s"] < 0.5 * rnd["modeled_latency_s"]
    # Baselines: roughly (n-1)/n of user accesses go remote, so their
    # locality should be far below the user-aware deployment's.
    assert ua["locality_rate"] > rnd["locality_rate"] + 0.2
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Random Fourier features: an RBF-kernel basis as the feature function.

Approximates an RBF kernel machine inside the generalized linear family
(Rahimi & Recht's random features): θ is a fixed random projection
``(W, b)`` and

    f(x) = sqrt(2 / d) * cos(W x + b),  plus an intercept slot.

A purely *computed* feature function — the case where caching feature
evaluations (not table lookups) is the serving win (paper Section 5).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.common.rng import as_generator
from repro.core.model import VeloxModel


class RandomFourierModel(VeloxModel):
    """RBF random-feature model with bandwidth ``gamma``."""

    materialized = False

    def __init__(
        self,
        name: str,
        input_dimension: int,
        num_features: int = 64,
        gamma: float = 1.0,
        seed: int = 0,
        version: int = 0,
        projection: np.ndarray | None = None,
        offsets: np.ndarray | None = None,
    ):
        if input_dimension < 1:
            raise ValidationError(
                f"input_dimension must be >= 1, got {input_dimension}"
            )
        if num_features < 1:
            raise ValidationError(f"num_features must be >= 1, got {num_features}")
        if gamma <= 0:
            raise ValidationError(f"gamma must be > 0, got {gamma}")
        super().__init__(name, dimension=num_features + 1, version=version)
        self.input_dimension = input_dimension
        self.num_features = num_features
        self.gamma = gamma
        self.seed = seed
        rng = as_generator(seed)
        if projection is None:
            projection = rng.normal(
                0.0, np.sqrt(2.0 * gamma), (num_features, input_dimension)
            )
        if offsets is None:
            offsets = rng.uniform(0.0, 2.0 * np.pi, num_features)
        if projection.shape != (num_features, input_dimension):
            raise ValidationError(
                f"projection must have shape ({num_features}, {input_dimension})"
            )
        if offsets.shape != (num_features,):
            raise ValidationError(f"offsets must have shape ({num_features},)")
        self.projection = projection
        self.offsets = offsets

    def features(self, x: object) -> np.ndarray:
        """Random Fourier basis of the input, plus intercept."""
        arr = np.asarray(x, dtype=float)
        if arr.shape != (self.input_dimension,):
            raise ValidationError(
                f"model {self.name!r} expects inputs of shape "
                f"({self.input_dimension},), got {arr.shape}"
            )
        basis = np.sqrt(2.0 / self.num_features) * np.cos(
            self.projection @ arr + self.offsets
        )
        return np.concatenate([basis, [1.0]])

    def retrain(self, batch_context, observations, user_weights: dict):
        """Resample the random basis with a fresh seed and re-solve every
        user's ridge regression against it in one batch job."""
        from repro.core.offline import solve_user_weights

        if not observations:
            raise ValidationError(
                f"cannot retrain model {self.name!r} with no observations"
            )
        new_model = RandomFourierModel(
            self.name,
            self.input_dimension,
            num_features=self.num_features,
            gamma=self.gamma,
            seed=self.seed + self.version + 1,
            version=self.version + 1,
        )
        solved = solve_user_weights(
            batch_context, observations, new_model.features, new_model.dimension
        )
        # The basis changed: users absent from the log cannot keep their
        # old-space weights and restart from zero.
        new_weights = {
            uid: solved.get(uid, np.zeros(new_model.dimension))
            for uid in set(user_weights) | set(solved)
        }
        return new_model, new_weights

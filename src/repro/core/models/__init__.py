"""Concrete VeloxModel implementations.

The paper's generalized personalized linear family (Section 3) covers a
wide range of models by swapping the feature function ``f(x, θ)``:

* :class:`MatrixFactorizationModel` — materialized latent-factor lookup
  (the running song-recommendation example),
* :class:`PersonalizedLinearModel` — raw/identity features, the simplest
  member of the family,
* :class:`EnsembleSvmModel` — an ensemble of offline-trained linear SVMs
  whose margins are the features (Section 6's worked example),
* :class:`RandomFourierModel` — RBF-kernel basis functions,
* :class:`MlpFeatureModel` — a small feed-forward network as the feature
  computation (the "deep neural network" case of Section 5's caching
  discussion).
"""

from repro.core.models.matrix_factorization import MatrixFactorizationModel
from repro.core.models.linear import PersonalizedLinearModel
from repro.core.models.svm_ensemble import EnsembleSvmModel, LinearSvm
from repro.core.models.rbf import RandomFourierModel
from repro.core.models.mlp import MlpFeatureModel

__all__ = [
    "MatrixFactorizationModel",
    "PersonalizedLinearModel",
    "EnsembleSvmModel",
    "LinearSvm",
    "RandomFourierModel",
    "MlpFeatureModel",
]

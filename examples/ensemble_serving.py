"""Ensemble serving: dynamic model weighting + indexed full-catalog topK.

Demonstrates the paper's "model selection (i.e., dynamic weighting)"
(abstract, Section 8) and "more efficient top-K support" (Section 8) on
a streaming-video service:

* two recommendation models coexist — a long-term-taste model and a
  recent-trends model — and which one is right differs per viewer and
  drifts over time,
* a per-user Hedge selector learns each viewer's best mixture online,
* homepage rows are produced by the indexed full-catalog topK (one
  BLAS matmul) instead of a per-title serving loop, and the speedup is
  measured live.

Run:  python examples/ensemble_serving.py
"""

import time

import numpy as np

from repro import Velox, VeloxConfig
from repro.core.models import MatrixFactorizationModel
from repro.core.selection import EnsembleRouter, HedgeSelector, SelectorScope
from repro.core.topk import NaiveTopK

NUM_TITLES = 3000
NUM_VIEWERS = 40
RANK = 8
SESSIONS = 800


def deploy():
    rng = np.random.default_rng(77)
    title_factors = rng.normal(0, 0.4, (NUM_TITLES, RANK))
    longterm_taste = rng.normal(0, 0.4, (NUM_VIEWERS, RANK))
    trending_taste = rng.normal(0, 0.4, (NUM_VIEWERS, RANK))
    # Half the viewers are creatures of habit, half chase trends.
    habit_viewers = set(range(0, NUM_VIEWERS, 2))

    def true_rating(uid: int, title: int) -> float:
        taste = longterm_taste if uid in habit_viewers else trending_taste
        return float(np.clip(3.0 + taste[uid] @ title_factors[title], 0.5, 5.0))

    velox = Velox.deploy(VeloxConfig(num_nodes=4), auto_retrain=False)
    for name, taste in (("longterm", longterm_taste), ("trending", trending_taste)):
        model = MatrixFactorizationModel(name, title_factors, global_mean=3.0)
        weights = {
            uid: model.pack_user_weights(taste[uid], 0.0)
            for uid in range(NUM_VIEWERS)
        }
        velox.add_model(model, initial_user_weights=weights)
    return velox, true_rating, habit_viewers


def main() -> None:
    velox, true_rating, habit_viewers = deploy()
    rng = np.random.default_rng(3)
    names = ["longterm", "trending"]
    scope = SelectorScope(
        lambda: HedgeSelector(names, eta=1.0, decay=0.9), per_user=True
    )
    router = EnsembleRouter(velox, names, scope)

    print(f"{NUM_TITLES} titles, {NUM_VIEWERS} viewers, 2 models\n")
    print(f"simulating {SESSIONS} viewing sessions with per-user Hedge ...")
    blended_loss = static_loss = 0.0
    for __ in range(SESSIONS):
        uid = int(rng.integers(NUM_VIEWERS))
        title = int(rng.integers(NUM_TITLES))
        inputs = {name: title for name in names}
        prediction = router.predict(uid, inputs)
        truth = true_rating(uid, title)
        blended_loss += (truth - prediction.score) ** 2
        static = 0.5 * sum(prediction.per_model.values())
        static_loss += (truth - static) ** 2
        router.observe(uid, inputs, truth)

    print(f"  cumulative loss: dynamic weighting {blended_loss:.1f} "
          f"vs static 50/50 blend {static_loss:.1f}")

    # Did the selector figure out who chases trends?
    correct = 0
    for uid in range(NUM_VIEWERS):
        weights = scope.for_user(uid).weights()
        picked = max(weights, key=weights.get)
        wanted = "longterm" if uid in habit_viewers else "trending"
        correct += picked == wanted
    print(f"  selector identified the right model for "
          f"{correct}/{NUM_VIEWERS} viewers")

    # Homepage: exact top-10 over the whole catalog, indexed vs naive.
    uid = 5
    velox.top_k_catalog("longterm", uid, k=10)  # build the engine once
    start = time.perf_counter()
    indexed = velox.top_k_catalog("longterm", uid, k=10)
    indexed_s = time.perf_counter() - start

    model = velox.model("longterm")
    weights = velox.manager.user_state_table("longterm").get(uid).weights
    naive_engine = NaiveTopK.from_model(model)
    start = time.perf_counter()
    naive = naive_engine.top_k(weights, 10)
    naive_s = time.perf_counter() - start

    assert [i for i, __s in indexed] == [i for i, __s in naive]
    print(f"\nhomepage top-10 for viewer {uid} "
          f"(indexed {indexed_s * 1e3:.1f} ms vs per-title loop "
          f"{naive_s * 1e3:.1f} ms, {naive_s / indexed_s:.0f}x):")
    for title, score in indexed[:5]:
        print(f"  title {title:>4}  predicted {score:.2f}")
    print("  ...")


if __name__ == "__main__":
    main()

"""In-process client: dispatches API objects against a Velox deployment.

The server and the remote client both reduce to this dispatcher, so the
API surface (validation, response shapes, error envelopes) is identical
whether calls arrive in-process or over the wire.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor

from repro.common.errors import ReproError
from repro.core.bandits import make_policy
from repro.frontend.api import (
    AnalyticsApiRequest,
    ApiResponse,
    HealthApiRequest,
    ObserveApiRequest,
    PredictApiRequest,
    RetrainApiRequest,
    StatusApiRequest,
    TopKApiRequest,
    TopKCatalogApiRequest,
)


class VeloxClient:
    """Binds API request objects to a :class:`~repro.core.velox.Velox`.

    With a started :class:`~repro.serving.ServingEngine`, ``predict``
    and ``top_k`` requests are enqueued through the engine (batching,
    admission control, shedding) instead of dispatched inline; every
    other request type keeps the synchronous path. Shed requests come
    back as ``OverloadedError`` error envelopes, never exceptions.
    """

    def __init__(self, velox, engine=None):
        self.velox = velox
        self.engine = engine
        #: Optional zero-arg callable returning transport counters; set
        #: by the TCP servers so ``status`` responses expose the front
        #: end's state (open sockets, backpressure, dispatch depth).
        self.frontend_status = None
        # Analytics queries can degrade to log scans; a small side pool
        # keeps them off the event-loop/serving thread (see
        # dispatch_async). Created lazily — most clients never query.
        self._analytics_pool: ThreadPoolExecutor | None = None
        self._analytics_pool_lock = threading.Lock()

    # -- convenience methods (build request objects internally) -------------

    def predict(self, uid: int, item: object, model: str | None = None) -> ApiResponse:
        """Point prediction via the API envelope."""
        return self.dispatch(PredictApiRequest(uid=uid, item=item, model=model))

    def top_k(
        self,
        uid: int,
        items,
        k: int = 1,
        model: str | None = None,
        policy: str | None = None,
    ) -> ApiResponse:
        """Best-k candidates via the API envelope."""
        return self.dispatch(
            TopKApiRequest(uid=uid, items=tuple(items), k=k, model=model, policy=policy)
        )

    def observe(
        self,
        uid: int,
        item: object,
        label: float,
        model: str | None = None,
        validation: bool = False,
    ) -> ApiResponse:
        """Feedback ingestion via the API envelope."""
        return self.dispatch(
            ObserveApiRequest(
                uid=uid, item=item, label=label, model=model, validation=validation
            )
        )

    def health(self, model: str | None = None) -> ApiResponse:
        """Model-health snapshot via the API envelope."""
        return self.dispatch(HealthApiRequest(model=model))

    def retrain(self, model: str | None = None, reason: str = "api request") -> ApiResponse:
        """Trigger an offline retrain via the API envelope."""
        return self.dispatch(RetrainApiRequest(model=model, reason=reason))

    def top_k_catalog(self, uid: int, k: int = 10, model: str | None = None) -> ApiResponse:
        """Whole-catalog best-k via the API envelope."""
        return self.dispatch(TopKCatalogApiRequest(uid=uid, k=k, model=model))

    def status(self) -> ApiResponse:
        """Deployment status report via the API envelope."""
        return self.dispatch(StatusApiRequest())

    def analytics(
        self,
        uid: int | None = None,
        item: int | None = None,
        time_start: float | None = None,
        time_end: float | None = None,
        group_by: str | None = None,
        agg: str = "count",
        force_scan: bool = False,
        model: str | None = None,
    ) -> ApiResponse:
        """One observation-log rollup query via the API envelope."""
        return self.dispatch(
            AnalyticsApiRequest(
                uid=uid,
                item=item,
                time_start=time_start,
                time_end=time_end,
                group_by=group_by,
                agg=agg,
                force_scan=force_scan,
                model=model,
            )
        )

    # -- dispatcher ----------------------------------------------------------

    def dispatch(self, request) -> ApiResponse:
        """Execute one API request; errors become error envelopes rather
        than exceptions, as a network server must behave."""
        try:
            return self._dispatch(request)
        except ReproError as err:
            return ApiResponse(ok=False, error=f"{type(err).__name__}: {err}")

    def dispatch_async(
        self, request, enqueue_time: float | None = None
    ) -> "Future[ApiResponse]":
        """Execute one API request without blocking the caller.

        The pipelined server path: ``predict``/``top_k`` requests with
        an attached engine are *enqueued* (the returned future completes
        when the engine's worker pool serves or sheds the batch), so one
        connection thread can keep many requests in flight and fill
        adaptive batches. Every other request — and every request when
        no engine is attached — is dispatched inline and returned as an
        already-completed future. Like :meth:`dispatch`, the future
        always yields an :class:`ApiResponse`; errors become envelopes,
        never exceptions.

        ``enqueue_time`` lets a transport stamp the request when its
        bytes arrived (the event-loop server stamps at ``recv``), so
        admission control's age accounting covers frame reassembly and
        backpressure delay, not just queue residence.
        """
        if isinstance(request, (PredictApiRequest, TopKApiRequest)) and (
            request.degraded
        ):
            # The degradation ladder's cache-only rung: answer from the
            # prediction cache without touching the engine queues, or
            # fail fast with the typed bottom rung. Serving it inline
            # keeps degraded reads sub-queue-latency by construction.
            return self._completed(self._dispatch_degraded(request))
        if self.engine is not None and isinstance(
            request, (PredictApiRequest, TopKApiRequest)
        ):
            # Timestamp at intake, before policy construction or queue
            # routing, so age-bound shedding sees the transport delay.
            arrived = (
                enqueue_time
                if enqueue_time is not None
                else self.engine.clock.now()
            )
            try:
                if isinstance(request, PredictApiRequest):
                    inner = self.engine.submit_predict(
                        request.uid,
                        request.item,
                        model=request.model,
                        enqueue_time=arrived,
                        deadline=request.deadline,
                    )
                    build = self._predict_payload
                else:
                    policy = (
                        make_policy(
                            request.policy, self.velox.config.bandit_exploration
                        )
                        if request.policy
                        else None
                    )
                    inner = self.engine.submit_top_k(
                        request.uid,
                        list(request.items),
                        k=request.k,
                        model=request.model,
                        policy=policy,
                        enqueue_time=arrived,
                        deadline=request.deadline,
                    )
                    build = self._top_k_payload
            except ReproError as err:
                return self._completed(
                    ApiResponse(ok=False, error=f"{type(err).__name__}: {err}")
                )
            outer: Future = Future()

            def _complete(done) -> None:
                try:
                    outer.set_result(ApiResponse(ok=True, payload=build(done.result())))
                except ReproError as err:
                    outer.set_result(
                        ApiResponse(ok=False, error=f"{type(err).__name__}: {err}")
                    )
                except Exception as err:
                    outer.set_result(
                        ApiResponse(ok=False, error=f"{type(err).__name__}: {err}")
                    )

            inner.add_done_callback(_complete)
            return outer
        if isinstance(request, AnalyticsApiRequest):
            # Analytics may fall back to a log scan; run it on the side
            # pool so a reporting query never stalls the event-loop
            # thread between serving requests.
            pool = self._analytics_pool
            if pool is None:
                with self._analytics_pool_lock:
                    pool = self._analytics_pool
                    if pool is None:
                        pool = ThreadPoolExecutor(
                            max_workers=2, thread_name_prefix="velox-analytics"
                        )
                        self._analytics_pool = pool

            def _run_analytics() -> ApiResponse:
                try:
                    return self.dispatch(request)
                except Exception as err:
                    return ApiResponse(
                        ok=False, error=f"{type(err).__name__}: {err}"
                    )

            return pool.submit(_run_analytics)
        try:
            return self._completed(self.dispatch(request))
        except Exception as err:  # dispatch of unknown/broken requests
            return self._completed(
                ApiResponse(ok=False, error=f"{type(err).__name__}: {err}")
            )

    @staticmethod
    def _completed(response: ApiResponse) -> "Future[ApiResponse]":
        future: Future = Future()
        future.set_result(response)
        return future

    def _dispatch_degraded(self, request) -> ApiResponse:
        """Serve a ``degraded=True`` request from the prediction cache.

        Never enqueues, never scores: a cache hit answers immediately
        (payload flagged ``degraded``), a miss is the ladder's typed
        bottom — a ``DegradedError`` envelope the client cannot confuse
        with overload or transport trouble.
        """
        service = self.velox.service
        model_name = self.velox._model_name(request.model)
        resilience = self.engine.resilience if self.engine is not None else None
        if isinstance(request, PredictApiRequest):
            result = service.predict_cached(
                model_name, request.uid, request.item
            )
            if result is None:
                if resilience is not None:
                    resilience.on_degraded("error")
                return ApiResponse(
                    ok=False,
                    error=(
                        "DegradedError: no cached prediction for "
                        f"user {request.uid}"
                    ),
                )
            payload = self._predict_payload(result)
        else:
            policy = (
                make_policy(request.policy, self.velox.config.bandit_exploration)
                if request.policy
                else None
            )
            results = service.top_k_cached(
                model_name,
                request.uid,
                list(request.items),
                k=request.k,
                policy=policy,
            )
            if not results:
                if resilience is not None:
                    resilience.on_degraded("error")
                return ApiResponse(
                    ok=False,
                    error=(
                        "DegradedError: no cached candidates for "
                        f"user {request.uid}"
                    ),
                )
            payload = self._top_k_payload(results)
        payload["degraded"] = True
        if resilience is not None:
            resilience.on_degraded("cached")
        return ApiResponse(ok=True, payload=payload)

    @staticmethod
    def _predict_payload(result) -> dict:
        return {
            "item": _wire_item(result.item),
            "score": result.score,
            "node": result.node_id,
            "prediction_cache_hit": result.prediction_cache_hit,
            # Bounded-staleness marker: the weights came from a promoted
            # follower that was lagging at promotion (failover serving).
            "stale": result.stale,
        }

    @staticmethod
    def _top_k_payload(results) -> dict:
        return {
            "items": [
                {"item": _wire_item(r.item), "score": r.score} for r in results
            ],
            "stale": any(r.stale for r in results),
        }

    def _dispatch(self, request) -> ApiResponse:
        if isinstance(request, (PredictApiRequest, TopKApiRequest)) and (
            request.degraded
        ):
            return self._dispatch_degraded(request)
        if isinstance(request, PredictApiRequest):
            if self.engine is not None:
                result = self.engine.predict(
                    request.uid,
                    request.item,
                    model=request.model,
                    deadline=request.deadline,
                )
            else:
                result = self.velox.predict_detailed(
                    request.model, request.uid, request.item
                )
            return ApiResponse(ok=True, payload=self._predict_payload(result))
        if isinstance(request, TopKApiRequest):
            policy = (
                make_policy(request.policy, self.velox.config.bandit_exploration)
                if request.policy
                else None
            )
            if self.engine is not None:
                results = self.engine.top_k(
                    request.uid,
                    list(request.items),
                    k=request.k,
                    model=request.model,
                    policy=policy,
                    deadline=request.deadline,
                )
            else:
                results = self.velox.service.top_k(
                    self.velox._model_name(request.model),
                    request.uid,
                    list(request.items),
                    k=request.k,
                    policy=policy,
                )
            return ApiResponse(ok=True, payload=self._top_k_payload(results))
        if isinstance(request, ObserveApiRequest):
            outcome = self.velox.observe(
                uid=request.uid,
                x=request.item,
                y=request.label,
                model_name=request.model,
                validation=request.validation,
            )
            return ApiResponse(
                ok=True,
                payload={
                    "loss": outcome.loss,
                    "retrained": outcome.retrained,
                    "node": outcome.node_id,
                },
            )
        if isinstance(request, HealthApiRequest):
            health = self.velox.health(request.model)
            payload = {
                "observations": health.observations,
                "baseline_loss": (
                    health.baseline.mean if health.baseline.count else None
                ),
                "recent_loss": health.recent.mean if health.recent.count else None,
                "validation_pool_size": len(health.validation_pool),
            }
            return ApiResponse(ok=True, payload=payload)
        if isinstance(request, RetrainApiRequest):
            event = self.velox.retrain(request.model, reason=request.reason)
            return ApiResponse(
                ok=True,
                payload={
                    "new_version": event.new_version,
                    "observations_used": event.observations_used,
                    "caches_repopulated": event.caches_repopulated,
                },
            )
        if isinstance(request, TopKCatalogApiRequest):
            results = self.velox.top_k_catalog(request.model, request.uid, k=request.k)
            return ApiResponse(
                ok=True,
                payload={
                    "items": [
                        {"item": _wire_item(item), "score": score}
                        for item, score in results
                    ]
                },
            )
        if isinstance(request, AnalyticsApiRequest):
            result = self.velox.analytics_query(
                request.to_query(),
                model_name=request.model,
                force_scan=request.force_scan,
            )
            return ApiResponse(ok=True, payload=result.payload())
        if isinstance(request, StatusApiRequest):
            from dataclasses import asdict

            from repro.core import reporting

            status = reporting.snapshot(self.velox)
            payload = asdict(status)
            payload["report"] = reporting.render(status)
            replication = getattr(self.velox.cluster, "replication", None)
            if replication is not None:
                payload["replication"] = replication.metrics.snapshot()
            if self.frontend_status is not None:
                payload["frontend"] = self.frontend_status()
            analytics = getattr(self.velox, "analytics", None)
            if analytics is not None:
                payload["analytics"] = analytics.describe()
            if self.engine is not None:
                payload["resilience"] = self.engine.resilience.snapshot()
            return ApiResponse(ok=True, payload=payload)
        return ApiResponse(
            ok=False, error=f"unknown request type {type(request).__name__}"
        )


def _wire_item(item: object) -> object:
    """Item payloads that survive JSON round-trips."""
    import numpy as np

    if isinstance(item, np.integer):
        return int(item)
    if isinstance(item, np.floating):
        return float(item)
    if isinstance(item, np.ndarray):
        return item.tolist()
    return item

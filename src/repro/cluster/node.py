"""A simulated cluster node.

Each node co-hosts one shard of every table (its ``node_id`` doubles as
the partition index, mirroring the paper's "manager and predictor are
co-located with each Tachyon worker"). The node tracks liveness and the
per-node serving counters the ablation benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NodeStats:
    """Per-node serving counters."""
    requests_served: int = 0
    observations_applied: int = 0
    remote_feature_fetches: int = 0


@dataclass
class Node:
    """One worker: an id, liveness, and serving counters.

    The heavyweight state (table shards) lives in the shared
    :class:`~repro.store.VeloxStore`, addressed by this node's id as the
    partition index — exactly how co-location works in the paper's
    deployment.
    """

    node_id: int
    alive: bool = True
    stats: NodeStats = field(default_factory=NodeStats)
    #: incremented on every restart; counters always belong to exactly
    #: one (node_id, epoch), so post-restart accounting never mixes the
    #: pre-failure epoch's numbers with the new one's.
    epoch: int = 0

    def fail(self) -> None:
        """Mark the node dead (router will skip it)."""
        self.alive = False

    def restart(self) -> None:
        """Mark the node alive again in a new epoch with fresh counters."""
        self.alive = True
        self.epoch += 1
        self.stats = NodeStats()

"""Personalized linear model over raw (or caller-supplied) features.

The simplest member of the generalized linear family: ``f`` is the
identity (plus an intercept slot), so each user's model is a personal
ridge regression over the input features. Retraining re-estimates
nothing global — θ is empty — but recomputes every user's weights from
the full log in one batch job, which is still valuable after the online
phase has only seen each observation once.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ValidationError
from repro.core.model import VeloxModel


class PersonalizedLinearModel(VeloxModel):
    """Identity features with an intercept: f(x) = [x, 1]."""

    materialized = False

    def __init__(self, name: str, input_dimension: int, version: int = 0):
        if input_dimension < 1:
            raise ValidationError(
                f"input_dimension must be >= 1, got {input_dimension}"
            )
        super().__init__(name, dimension=input_dimension + 1, version=version)
        self.input_dimension = input_dimension

    def features(self, x: object) -> np.ndarray:
        """Identity features with an appended intercept."""
        arr = np.asarray(x, dtype=float)
        if arr.shape != (self.input_dimension,):
            raise ValidationError(
                f"model {self.name!r} expects inputs of shape "
                f"({self.input_dimension},), got {arr.shape}"
            )
        return np.concatenate([arr, [1.0]])

    def retrain(self, batch_context, observations, user_weights: dict):
        """Batch re-solve of every user's ridge regression on the full log."""
        from repro.core.offline import solve_user_weights

        if not observations:
            raise ValidationError(
                f"cannot retrain model {self.name!r} with no observations"
            )
        solved = solve_user_weights(
            batch_context, observations, self.features, self.dimension
        )
        new_model = PersonalizedLinearModel(
            self.name, self.input_dimension, version=self.version + 1
        )
        # Identity features: the space is unchanged, so users absent
        # from the log keep their current weights.
        new_weights = dict(user_weights)
        new_weights.update(solved)
        return new_model, new_weights

"""Sampling engine: reservoir and stratified sampling for approximation.

BDAS "contained ... a sampling engine" (paper Section 1) for trading
accuracy against latency on large data. Here it serves the model
lifecycle: offline retraining over the full observation log is the
dominant batch cost, and a stratified subsample — every user keeps a
minimum number of observations so personalization survives — retrains
nearly as well in a fraction of the time (see the sampled-retrain
ablation benchmark).

* :class:`ReservoirSampler` — one-pass uniform k-sample (Vitter's
  Algorithm R) over streams of unknown length,
* :class:`StratifiedSampler` — per-stratum reservoirs with a per-stratum
  floor,
* :func:`sample_observations` — the convenience entry the manager uses
  for ``retrain_now(sample_fraction=...)``.
"""

from repro.sampling.reservoir import (
    ReservoirSampler,
    StratifiedSampler,
    sample_observations,
)

__all__ = [
    "ReservoirSampler",
    "StratifiedSampler",
    "sample_observations",
]

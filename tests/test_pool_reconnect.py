"""ConnectionPool self-healing: dead-connection detection and reconnect.

A server restart kills every pooled socket. The pool must (a) notice at
pick time rather than round-robining onto dead sockets forever, (b) fail
fast with TransportError while the server is down, and (c) transparently
reconnect — with capped backoff — once it returns, surfacing the
reconnect counts.
"""

from __future__ import annotations

import time

import pytest

from repro.common.errors import TransportError
from repro.frontend import PredictApiRequest, VeloxServer
from repro.frontend.pipelined import ConnectionPool


def wait_until(predicate, timeout: float = 5.0) -> bool:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def call_until_healed(pool, request, timeout: float = 5.0):
    """Keep calling through reconnect backoff until the pool heals."""
    deadline = time.time() + timeout
    last_error = None
    while time.time() < deadline:
        try:
            return pool.call(request)
        except TransportError as err:
            last_error = err
            time.sleep(0.05)
    raise AssertionError(f"pool never healed: {last_error}")


class TestPoolValidation:
    def test_size_must_be_positive(self, deployed_velox):
        with VeloxServer(deployed_velox) as server:
            with pytest.raises(TransportError):
                ConnectionPool(server.host, server.port, size=0)

    def test_backoff_must_be_ordered(self, deployed_velox):
        with VeloxServer(deployed_velox) as server:
            with pytest.raises(TransportError):
                ConnectionPool(
                    server.host,
                    server.port,
                    reconnect_backoff=1.0,
                    max_reconnect_backoff=0.5,
                )


class TestReconnect:
    def test_pool_survives_a_server_restart(self, deployed_velox):
        request = PredictApiRequest(uid=1, item=3)
        expected = deployed_velox.service.predict("songs", 1, 3).score
        server = VeloxServer(deployed_velox).start()
        host, port = server.host, server.port
        pool = ConnectionPool(host, port, size=2, reconnect_backoff=0.02)
        try:
            first = pool.call(request)
            assert first.ok
            assert first.payload["score"] == pytest.approx(expected, abs=1e-9)
            assert first.payload["stale"] is False  # replication flag on the wire
            assert pool.reconnects == 0

            server.stop()
            # Every pooled socket is now dead. The pool notices and
            # fails fast instead of blocking.
            assert wait_until(
                lambda: _call_fails(pool, request), timeout=5.0
            ), "pool kept succeeding against a stopped server"
            assert pool.failed_reconnects > 0

            server = VeloxServer(deployed_velox, host=host, port=port).start()
            healed = call_until_healed(pool, request)
            assert healed.ok
            assert healed.payload["score"] == pytest.approx(expected, abs=1e-9)
            assert pool.reconnects >= 1
        finally:
            pool.close()
            server.stop()

    def test_client_marks_itself_dead_on_transport_failure(self, deployed_velox):
        """The pool's liveness check: a client whose socket died reports
        closed=True even though close() was never called."""
        server = VeloxServer(deployed_velox).start()
        pool = ConnectionPool(server.host, server.port, size=1)
        try:
            client = pool._clients[0]
            assert not client.closed
            server.stop()
            assert wait_until(lambda: client.closed, timeout=5.0)
            with pytest.raises(TransportError):
                client.submit(PredictApiRequest(uid=1, item=3))
        finally:
            pool.close()
            server.stop()

    def test_closed_pool_rejects_submissions(self, deployed_velox):
        with VeloxServer(deployed_velox) as server:
            pool = ConnectionPool(server.host, server.port, size=1)
            pool.close()
            with pytest.raises(TransportError):
                pool.call(PredictApiRequest(uid=1, item=3))

    def test_backoff_caps_reconnect_attempts(self, deployed_velox):
        """While the server stays down, each failed attempt pushes the
        slot's next retry out (doubling, capped) — a tight call loop must
        not translate into a tight connect loop."""
        server = VeloxServer(deployed_velox).start()
        pool = ConnectionPool(
            server.host,
            server.port,
            size=1,
            reconnect_backoff=0.2,
            max_reconnect_backoff=1.0,
        )
        try:
            server.stop()
            assert wait_until(
                lambda: _call_fails(pool, PredictApiRequest(uid=1, item=3)),
                timeout=5.0,
            )
            pool._retry_at[0] = 0.0  # force one attempt now
            with pytest.raises(TransportError):
                pool.call(PredictApiRequest(uid=1, item=3))
            attempts = pool.failed_reconnects
            for _ in range(20):  # hammering within the backoff window...
                with pytest.raises(TransportError):
                    pool.call(PredictApiRequest(uid=1, item=3))
            # ...performs no (or at most one racy) further connect attempt.
            assert pool.failed_reconnects <= attempts + 1
        finally:
            pool.close()


def _call_fails(pool, request) -> bool:
    try:
        pool.call(request, timeout=1.0)
        return False
    except TransportError:
        return True

"""The micro-batch stream processor: sources, operators, sinks, pipeline."""

import pytest

from repro.common.errors import ValidationError
from repro.streaming import (
    CallbackSink,
    CollectSink,
    Filter,
    FlatMap,
    IterableSource,
    Map,
    PipelineMetrics,
    ReplaySource,
    StreamPipeline,
    TumblingWindowAggregate,
    VeloxObserveSink,
)


class TestSources:
    def test_iterable_source_chunks(self):
        source = IterableSource(range(10), batch_size=4)
        assert source.next_batch() == [0, 1, 2, 3]
        assert source.next_batch() == [4, 5, 6, 7]
        assert source.next_batch() == [8, 9]
        assert source.next_batch() is None
        assert source.next_batch() is None  # stays exhausted

    def test_iterable_source_exact_multiple(self):
        source = IterableSource(range(4), batch_size=2)
        assert source.next_batch() == [0, 1]
        assert source.next_batch() == [2, 3]
        assert source.next_batch() is None

    def test_empty_iterable(self):
        assert IterableSource([], batch_size=3).next_batch() is None

    def test_replay_source(self):
        source = ReplaySource([[1, 2], [3]])
        assert source.next_batch() == [1, 2]
        assert source.next_batch() == [3]
        assert source.next_batch() is None

    def test_validation(self):
        with pytest.raises(ValidationError):
            IterableSource([1], batch_size=0)
        with pytest.raises(ValidationError):
            ReplaySource([42])  # not a list of lists


class TestOperators:
    def test_map_filter_flatmap(self):
        batch = [1, 2, 3, 4]
        assert Map(lambda x: x * 10).process(batch) == [10, 20, 30, 40]
        assert Filter(lambda x: x % 2 == 0).process(batch) == [2, 4]
        assert FlatMap(lambda x: [x] * x).process([2, 1]) == [2, 2, 1]

    def test_tumbling_window_emits_on_full(self):
        window = TumblingWindowAggregate(
            key_fn=lambda r: r[0], zero=0.0, add=lambda acc, r: acc + r[1],
            window_size=2,
        )
        out = window.process([("a", 1.0), ("b", 5.0), ("a", 3.0)])
        assert out == [("a", 4.0)]  # a's window closed; b still open
        assert window.flush() == [("b", 5.0)]

    def test_window_state_spans_batches(self):
        window = TumblingWindowAggregate(
            key_fn=lambda r: r[0], zero=0, add=lambda acc, r: acc + 1,
            window_size=3,
        )
        assert window.process([("k", None)]) == []
        assert window.process([("k", None)]) == []
        assert window.process([("k", None)]) == [("k", 3)]

    def test_window_zero_not_shared_between_keys(self):
        window = TumblingWindowAggregate(
            key_fn=lambda r: r[0], zero=[], add=lambda acc, r: acc + [r[1]],
            window_size=2,
        )
        out = window.process([("a", 1), ("b", 2), ("a", 3), ("b", 4)])
        assert dict(out) == {"a": [1, 3], "b": [2, 4]}

    def test_window_validation(self):
        with pytest.raises(ValidationError):
            TumblingWindowAggregate(lambda r: r, 0, lambda a, b: a, 0)

    def test_window_spanning_end_of_stream_flushes_partial(self):
        """A window that never fills must still surface at flush with
        exactly the records it absorbed — the end-of-stream boundary."""
        window = TumblingWindowAggregate(
            key_fn=lambda r: r[0], zero=0.0, add=lambda acc, r: acc + r[1],
            window_size=3,
        )
        assert window.process([("k", 1.0), ("k", 2.0)]) == []
        assert window.flush() == [("k", 3.0)]
        # flush ends the window: state is gone, a second flush is empty.
        assert window.flush() == []
        assert window.open_windows() == {}

    def test_empty_batch_process_is_a_noop(self):
        window = TumblingWindowAggregate(
            key_fn=lambda r: r[0], zero=0, add=lambda acc, r: acc + 1,
            window_size=2,
        )
        assert window.process([]) == []
        window.process([("k", None)])
        # An empty batch between records must not close or corrupt the
        # open window.
        assert window.process([]) == []
        assert window.process([("k", None)]) == [("k", 2)]

    def test_open_windows_exposes_partial_state_without_ending_it(self):
        window = TumblingWindowAggregate(
            key_fn=lambda r: r[0], zero=0.0, add=lambda acc, r: acc + r[1],
            window_size=3,
        )
        window.process([("a", 1.0), ("a", 2.0), ("b", 7.0)])
        snapshot = window.open_windows()
        assert snapshot == {"a": (3.0, 2), "b": (7.0, 1)}
        # Reading open windows is non-destructive: the next record still
        # closes a's window with the full aggregate.
        assert window.process([("a", 4.0)]) == [("a", 7.0)]


class TestPipeline:
    def test_end_to_end_transformation(self):
        sink = CollectSink()
        pipeline = StreamPipeline(
            source=IterableSource(range(20), batch_size=6),
            operators=[Filter(lambda x: x % 2 == 0), Map(lambda x: x * x)],
            sinks=[sink],
        )
        metrics = pipeline.run()
        assert sink.records == [x * x for x in range(0, 20, 2)]
        assert metrics.batches == 4
        assert metrics.records_in == 20
        assert metrics.records_out == 10
        assert sink.closed

    def test_max_batches_pauses_and_resumes(self):
        sink = CollectSink()
        pipeline = StreamPipeline(
            source=IterableSource(range(10), batch_size=2), sinks=[sink]
        )
        pipeline.run(max_batches=2)
        assert len(sink.records) == 4
        assert not sink.closed  # stream not ended yet
        pipeline.run()
        assert len(sink.records) == 10
        assert sink.closed

    def test_flush_routes_through_downstream_operators(self):
        window = TumblingWindowAggregate(
            key_fn=lambda r: r % 3, zero=0, add=lambda acc, r: acc + r,
            window_size=100,  # never fills: everything flushes
        )
        sink = CollectSink()
        pipeline = StreamPipeline(
            source=IterableSource(range(6), batch_size=3),
            operators=[window, Map(lambda kv: kv[1])],
            sinks=[sink],
        )
        metrics = pipeline.run()
        assert sorted(sink.records) == sorted(
            [0 + 3, 1 + 4, 2 + 5]
        )
        assert metrics.flushed_records == 3

    def test_multiple_sinks_fan_out(self):
        seen = []
        sink_a = CollectSink()
        sink_b = CallbackSink(seen.append)
        StreamPipeline(
            source=IterableSource([1, 2, 3], batch_size=2),
            sinks=[sink_a, sink_b],
        ).run()
        assert sink_a.records == [1, 2, 3]
        assert seen == [1, 2, 3]

    def test_requires_a_sink(self):
        with pytest.raises(ValidationError):
            StreamPipeline(source=IterableSource([1]), sinks=[])


class TestVeloxIntegration:
    def test_clickstream_feeds_online_learning(self, deployed_velox):
        """Raw play events roll up per (user, song) session window and
        flow into observe — the Figure 1 loop through the stream layer."""
        events = [
            # (uid, song, seconds_listened); 3 plays per pair -> 1 label
            (1, 5, 200.0), (1, 5, 40.0), (1, 5, 240.0),
            (2, 7, 10.0), (2, 7, 20.0), (2, 7, 15.0),
        ]
        window = TumblingWindowAggregate(
            key_fn=lambda e: (e[0], e[1]),
            zero=(0.0, 0),
            add=lambda acc, e: (acc[0] + e[2], acc[1] + 1),
            window_size=3,
        )
        to_rating = Map(
            lambda kv: (kv[0][0], kv[0][1], min(5.0, kv[1][0] / kv[1][1] / 48.0))
        )
        sink = VeloxObserveSink(deployed_velox)
        StreamPipeline(
            source=IterableSource(events, batch_size=2),
            operators=[window, to_rating],
            sinks=[sink],
        ).run()
        assert sink.observations_written == 2
        log = deployed_velox.manager.observation_log("songs")
        assert len(log) == 2
        labels = {ob.uid: ob.label for ob in log.read_all()}
        assert labels[1] > labels[2]  # heavy listener -> higher rating

    def test_malformed_record_rejected(self, deployed_velox):
        sink = VeloxObserveSink(deployed_velox)
        with pytest.raises(ValidationError):
            sink.write([("not", "a", "triple", "at all")])

"""Front-end: codec round-trips, in-process client, TCP server."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.frontend import (
    ApiResponse,
    HealthApiRequest,
    ObserveApiRequest,
    PredictApiRequest,
    RemoteClient,
    RetrainApiRequest,
    TopKApiRequest,
    VeloxClient,
    VeloxServer,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)


class TestCodec:
    def test_predict_roundtrip(self):
        original = PredictApiRequest(uid=3, item=17, model="songs")
        decoded = decode_request(encode_request(original))
        assert decoded == original

    def test_topk_roundtrip(self):
        original = TopKApiRequest(uid=1, items=(1, 2, 3), k=2, policy="linucb")
        decoded = decode_request(encode_request(original))
        assert decoded == original

    def test_observe_roundtrip(self):
        original = ObserveApiRequest(uid=9, item=4, label=3.5)
        assert decode_request(encode_request(original)) == original

    def test_observe_validation_flag_roundtrip(self):
        original = ObserveApiRequest(uid=9, item=4, label=3.5, validation=True)
        assert decode_request(encode_request(original)).validation is True

    def test_ndarray_item_roundtrip(self):
        original = PredictApiRequest(uid=1, item=np.array([1.0, 2.5]))
        decoded = decode_request(encode_request(original))
        assert np.array_equal(decoded.item, original.item)

    def test_health_and_retrain_roundtrip(self):
        assert decode_request(encode_request(HealthApiRequest("m"))).model == "m"
        retrain = decode_request(encode_request(RetrainApiRequest("m", "why")))
        assert retrain.reason == "why"

    def test_response_roundtrip(self):
        response = ApiResponse(ok=True, payload={"score": 3.5})
        decoded = decode_response(encode_response(response))
        assert decoded == response

    def test_malformed_json_rejected(self):
        with pytest.raises(ValidationError):
            decode_request("{not json")
        with pytest.raises(ValidationError):
            decode_response("{not json")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValidationError):
            decode_request('{"method": "drop_tables"}')


class TestInProcessClient:
    def test_predict(self, deployed_velox):
        client = VeloxClient(deployed_velox)
        response = client.predict(uid=1, item=5)
        assert response.ok
        assert response.payload["item"] == 5
        assert isinstance(response.payload["score"], float)

    def test_top_k_with_policy(self, deployed_velox):
        client = VeloxClient(deployed_velox)
        response = client.top_k(uid=1, items=[1, 2, 3, 4], k=2, policy="linucb")
        assert response.ok
        assert len(response.payload["items"]) == 2

    def test_observe_then_health(self, deployed_velox):
        client = VeloxClient(deployed_velox)
        assert client.observe(uid=1, item=5, label=4.0).ok
        health = client.health()
        assert health.ok
        assert health.payload["observations"] == 1

    def test_validation_observations_reach_the_pool(self, deployed_velox):
        client = VeloxClient(deployed_velox)
        client.observe(uid=1, item=5, label=4.0, validation=True)
        assert client.health().payload["validation_pool_size"] == 1

    def test_errors_become_envelopes(self, deployed_velox):
        client = VeloxClient(deployed_velox)
        response = client.predict(uid=1, item=5, model="ghost")
        assert not response.ok
        assert "ModelNotFound" in response.error

    def test_retrain_endpoint(self, deployed_velox, small_split):
        client = VeloxClient(deployed_velox)
        for r in small_split.stream[:30]:
            client.observe(uid=r.uid, item=r.item_id, label=r.rating)
        response = client.retrain()
        assert response.ok
        assert response.payload["new_version"] == 1


class TestNewEndpoints:
    def test_top_k_catalog_endpoint(self, deployed_velox):
        from repro.frontend import TopKCatalogApiRequest, VeloxClient

        client = VeloxClient(deployed_velox)
        response = client.top_k_catalog(uid=2, k=5)
        assert response.ok
        items = response.payload["items"]
        assert len(items) == 5
        scores = [entry["score"] for entry in items]
        assert scores == sorted(scores, reverse=True)
        # codec roundtrip of the new request type
        from repro.frontend import decode_request, encode_request

        original = TopKCatalogApiRequest(uid=2, k=5, model="songs")
        assert decode_request(encode_request(original)) == original

    def test_status_endpoint(self, deployed_velox):
        from repro.frontend import StatusApiRequest, VeloxClient
        from repro.frontend import decode_request, encode_request

        deployed_velox.observe(uid=1, x=2, y=4.0)
        client = VeloxClient(deployed_velox)
        response = client.status()
        assert response.ok
        assert response.payload["num_nodes"] == 2
        assert response.payload["models"][0]["name"] == "songs"
        assert "songs" in response.payload["report"]
        assert decode_request(encode_request(StatusApiRequest())) == StatusApiRequest()

    def test_status_over_socket(self, deployed_velox):
        from repro.frontend import StatusApiRequest

        with VeloxServer(deployed_velox) as server:
            with RemoteClient(server.host, server.port) as client:
                response = client.call(StatusApiRequest())
                assert response.ok
                assert response.payload["alive_nodes"] == 2


class TestTcpServer:
    def test_full_request_cycle_over_socket(self, deployed_velox):
        with VeloxServer(deployed_velox) as server:
            with RemoteClient(server.host, server.port) as client:
                response = client.call(PredictApiRequest(uid=2, item=8))
                assert response.ok
                response = client.call(
                    TopKApiRequest(uid=2, items=(1, 2, 3), k=1)
                )
                assert response.ok and len(response.payload["items"]) == 1
                response = client.call(ObserveApiRequest(uid=2, item=8, label=4.5))
                assert response.ok

    def test_concurrent_clients(self, deployed_velox):
        import threading

        with VeloxServer(deployed_velox) as server:
            failures = []

            def worker(uid):
                try:
                    with RemoteClient(server.host, server.port) as client:
                        for item in range(10):
                            response = client.call(PredictApiRequest(uid=uid, item=item))
                            assert response.ok
                except Exception as err:  # collected for the main thread
                    failures.append(err)

            threads = [threading.Thread(target=worker, args=(u,)) for u in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert failures == []

    def test_server_survives_bad_request(self, deployed_velox):
        import socket

        with VeloxServer(deployed_velox) as server:
            sock = socket.create_connection((server.host, server.port), timeout=5)
            reader = sock.makefile("r")
            sock.sendall(b'{"method": "nonsense"}\n')
            line = reader.readline()
            response = decode_response(line)
            assert not response.ok
            # server still answers valid requests on the same connection
            sock.sendall((encode_request(PredictApiRequest(uid=1, item=2)) + "\n").encode())
            assert decode_response(reader.readline()).ok
            sock.close()

    def test_double_start_rejected(self, deployed_velox):
        server = VeloxServer(deployed_velox)
        server.start()
        try:
            with pytest.raises(ValidationError):
                server.start()
        finally:
            server.stop()

"""Dataset narrow transformations and partitioning semantics."""

import pytest

from repro.batch import BatchContext
from repro.common.errors import BatchExecutionError


@pytest.fixture
def ctx():
    return BatchContext(default_parallelism=3)


class TestParallelize:
    def test_collect_roundtrip(self, ctx):
        data = list(range(17))
        assert ctx.parallelize(data, 4).collect() == data

    def test_partition_count_respected(self, ctx):
        ds = ctx.parallelize(range(10), 4)
        assert ds.num_partitions == 4
        parts = ds.collect_partitions()
        assert len(parts) == 4
        assert sum(len(p) for p in parts) == 10

    def test_empty_data(self, ctx):
        assert ctx.parallelize([], 2).collect() == []

    def test_more_partitions_than_records(self, ctx):
        ds = ctx.parallelize([1, 2], 5)
        assert ds.collect() == [1, 2]

    def test_default_partitions_capped_by_data(self, ctx):
        assert ctx.parallelize([1]).num_partitions == 1


class TestRange:
    def test_range_stop_only(self, ctx):
        assert ctx.range(5).collect() == [0, 1, 2, 3, 4]

    def test_range_start_stop_step(self, ctx):
        assert ctx.range(2, 11, 3).collect() == [2, 5, 8]

    def test_range_zero_step_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.range(0, 10, 0)


class TestNarrowTransformations:
    def test_map(self, ctx):
        assert ctx.parallelize(range(5), 2).map(lambda x: x * x).collect() == [
            0, 1, 4, 9, 16,
        ]

    def test_filter(self, ctx):
        result = ctx.parallelize(range(10), 3).filter(lambda x: x % 2 == 0).collect()
        assert result == [0, 2, 4, 6, 8]

    def test_flat_map(self, ctx):
        result = ctx.parallelize([1, 2, 3], 2).flat_map(lambda x: [x] * x).collect()
        assert result == [1, 2, 2, 3, 3, 3]

    def test_map_partitions_receives_index(self, ctx):
        ds = ctx.parallelize(range(6), 3)
        tagged = ds.map_partitions(lambda i, it: ((i, x) for x in it)).collect()
        indices = {i for i, _x in tagged}
        assert indices == {0, 1, 2}

    def test_key_by_and_values(self, ctx):
        pairs = ctx.parallelize([3, 4], 1).key_by(lambda x: x % 2)
        assert pairs.collect() == [(1, 3), (0, 4)]
        assert pairs.keys().collect() == [1, 0]
        assert pairs.values().collect() == [3, 4]

    def test_map_values(self, ctx):
        pairs = ctx.parallelize([("a", 1), ("b", 2)], 1)
        assert pairs.map_values(lambda v: v * 10).collect() == [("a", 10), ("b", 20)]

    def test_flat_map_values(self, ctx):
        pairs = ctx.parallelize([("a", 2)], 1)
        assert pairs.flat_map_values(lambda v: range(v)).collect() == [
            ("a", 0), ("a", 1),
        ]

    def test_union(self, ctx):
        a = ctx.parallelize([1, 2], 2)
        b = ctx.parallelize([3], 1)
        merged = a.union(b)
        assert merged.num_partitions == 3
        assert merged.collect() == [1, 2, 3]

    def test_chained_transformations_pipeline(self, ctx):
        result = (
            ctx.range(100, num_partitions=4)
            .map(lambda x: x + 1)
            .filter(lambda x: x % 3 == 0)
            .map(lambda x: x // 3)
            .collect()
        )
        assert result == list(range(1, 34))

    def test_sample_fraction_bounds(self, ctx):
        ds = ctx.parallelize(range(100), 4)
        assert ds.sample(0.0).count() == 0
        assert ds.sample(1.0).count() == 100
        mid = ds.sample(0.5, seed=1).count()
        assert 25 <= mid <= 75

    def test_sample_deterministic_per_seed(self, ctx):
        ds = ctx.parallelize(range(50), 3)
        assert ds.sample(0.3, seed=9).collect() == ds.sample(0.3, seed=9).collect()

    def test_sample_invalid_fraction(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1]).sample(1.5)

    def test_zip_with_index_global_and_dense(self, ctx):
        ds = ctx.parallelize(list("abcdefg"), 3)
        indexed = ds.zip_with_index().collect()
        assert [i for _c, i in indexed] == list(range(7))
        assert [c for c, _i in indexed] == list("abcdefg")


class TestCaching:
    def test_cache_avoids_recomputation(self, ctx):
        calls = []

        def loud(x):
            calls.append(x)
            return x

        ds = ctx.parallelize(range(5), 1).map(loud).cache()
        ds.collect()
        ds.collect()
        assert len(calls) == 5

    def test_unpersist_recomputes(self, ctx):
        calls = []
        ds = ctx.parallelize(range(3), 1).map(lambda x: calls.append(x) or x).cache()
        ds.collect()
        ds.unpersist()
        ds.collect()
        assert len(calls) == 6


class TestErrors:
    def test_invalid_partition_count(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([1], 0)

    def test_out_of_range_partition_access(self, ctx):
        ds = ctx.parallelize([1, 2], 2)
        from repro.batch.dataset import TaskContext

        with pytest.raises(BatchExecutionError):
            ds.iterator(5, TaskContext(None))

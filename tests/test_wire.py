"""Binary framed wire protocol: codec, negotiation, pipelined client."""

from __future__ import annotations

import io
import json
import socket
import socketserver
import threading

import numpy as np
import pytest

from repro.common.errors import TransportError, ValidationError
from repro.frontend import (
    AnalyticsApiRequest,
    ApiResponse,
    ConnectionPool,
    HealthApiRequest,
    ObserveApiRequest,
    PipelinedClient,
    PredictApiRequest,
    RemoteClient,
    RetrainApiRequest,
    StatusApiRequest,
    TopKApiRequest,
    TopKCatalogApiRequest,
    VeloxServer,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.frontend import wire
from repro.serving import ServingConfig

#: Every request shape both codecs must carry, including ndarray and
#: scalar-float item payloads.
REQUEST_CATALOG = [
    PredictApiRequest(uid=3, item=17, model="songs"),
    PredictApiRequest(uid=0, item="sku-77", model=None),
    PredictApiRequest(uid=1, item=2.5),
    PredictApiRequest(uid=9, item=np.linspace(-1.0, 1.0, 8)),
    TopKApiRequest(uid=1, items=(1, 2, 3), k=2, model="songs", policy="linucb"),
    TopKApiRequest(
        uid=4,
        items=(np.arange(4, dtype=float), np.ones(4)),
        k=1,
        policy=None,
    ),
    ObserveApiRequest(uid=9, item=4, label=3.5, model="songs", validation=True),
    ObserveApiRequest(uid=2, item=0.25, label=-1.0),
    HealthApiRequest(model="songs"),
    HealthApiRequest(model=None),
    RetrainApiRequest(model="songs", reason="drift"),
    TopKCatalogApiRequest(uid=2, k=5, model="songs"),
    StatusApiRequest(),
    AnalyticsApiRequest(uid=7, agg="mean", model="songs"),
    AnalyticsApiRequest(
        item=4,
        time_start=0.0,
        time_end=200.0,
        group_by="window",
        agg="sum",
        force_scan=True,
    ),
    AnalyticsApiRequest(),
]

RESPONSE_CATALOG = [
    ApiResponse(ok=True, payload={"score": 3.5, "item": 17, "node": 0}),
    ApiResponse(ok=True, payload={"items": [{"item": 1, "score": 0.5}]}),
    ApiResponse(ok=True, payload={"baseline_loss": None, "observations": 12}),
    ApiResponse(
        ok=True,
        payload={
            "nested": {"a": [1, 2.5, None, True], "b": {"deep": "text"}},
            "flags": [False, True],
        },
    ),
    ApiResponse(ok=False, error="OverloadedError: queue full"),
]


def binary_roundtrip_request(request):
    frame = wire.encode_request_frame(request, corr_id=42)
    opcode, corr_id, payload = wire.read_frame(io.BytesIO(frame))
    assert corr_id == 42
    return wire.decode_request_payload(opcode, payload)


def assert_items_equal(a, b):
    """Structural equality that treats ndarrays by value."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        np.testing.assert_allclose(
            np.asarray(a, dtype=float), np.asarray(b, dtype=float)
        )
    elif isinstance(a, (list, tuple)):
        assert isinstance(b, (list, tuple)) and len(a) == len(b)
        for x, y in zip(a, b):
            assert_items_equal(x, y)
    else:
        assert a == b, f"{a!r} != {b!r}"


def assert_requests_equal(left, right):
    assert type(left) is type(right)
    for name in left.__dataclass_fields__:
        a, b = getattr(left, name), getattr(right, name)
        if name in ("item", "items"):
            assert_items_equal(a, b)
        else:
            assert a == b, f"field {name}: {a!r} != {b!r}"


class TestBinaryCodec:
    @pytest.mark.parametrize("request_obj", REQUEST_CATALOG, ids=repr)
    def test_request_roundtrip(self, request_obj):
        decoded = binary_roundtrip_request(request_obj)
        assert_requests_equal(decoded, request_obj)

    def test_ndarray_dtype_and_shape_survive(self):
        item = np.arange(6, dtype=np.float32).reshape(2, 3)
        decoded = binary_roundtrip_request(PredictApiRequest(uid=1, item=item))
        assert decoded.item.dtype == np.float32
        assert decoded.item.shape == (2, 3)
        np.testing.assert_array_equal(decoded.item, item)

    @pytest.mark.parametrize("response", RESPONSE_CATALOG, ids=repr)
    def test_response_roundtrip(self, response):
        frame = wire.encode_response_frame(response, corr_id=7)
        opcode, corr_id, payload = wire.read_frame(io.BytesIO(frame))
        assert opcode == wire.OP_RESPONSE and corr_id == 7
        assert wire.decode_response_payload(payload) == response

    def test_truncated_frame_raises_transport_error(self):
        frame = wire.encode_request_frame(PredictApiRequest(uid=1, item=2), 0)
        for cut in (3, len(frame) - 1):
            with pytest.raises(TransportError):
                wire.read_frame(io.BytesIO(frame[:cut]))

    def test_clean_eof_returns_none(self):
        assert wire.read_frame(io.BytesIO(b"")) is None

    def test_absurd_length_rejected(self):
        header = wire._HEADER.pack(wire.MAX_FRAME_BYTES + 10, wire.OP_STATUS, 0)
        with pytest.raises(TransportError):
            wire.read_frame(io.BytesIO(header))

    def test_unserializable_item_rejected(self):
        with pytest.raises(ValidationError):
            wire.encode_request_frame(
                PredictApiRequest(uid=1, item=object()), 0
            )

    def test_contiguous_ndarray_encodes_without_forced_copy(self):
        """Contiguous arrays append straight from their buffer: the
        forced-copy counter stays flat and the bytes round-trip."""
        wire.reset_ndarray_forced_copies()
        item = np.arange(32, dtype=np.float64)
        decoded = binary_roundtrip_request(PredictApiRequest(uid=1, item=item))
        assert wire.ndarray_forced_copies() == 0
        np.testing.assert_array_equal(decoded.item, item)

    def test_non_contiguous_ndarray_counts_one_forced_copy(self):
        wire.reset_ndarray_forced_copies()
        strided = np.arange(64, dtype=np.float64)[::2]
        assert not strided.flags.c_contiguous
        decoded = binary_roundtrip_request(PredictApiRequest(uid=1, item=strided))
        assert wire.ndarray_forced_copies() == 1
        np.testing.assert_array_equal(decoded.item, strided)
        wire.reset_ndarray_forced_copies()

    def test_binary_predict_frame_smaller_than_json_for_ndarrays(self):
        request = PredictApiRequest(uid=1, item=np.random.default_rng(0).normal(size=64))
        binary = wire.encode_request_frame(request, 0)
        json_line = (encode_request(request) + "\n").encode("utf-8")
        assert len(binary) < len(json_line)

    def test_non_string_dict_keys_coerced_like_json(self):
        # Histogram counts and similar metrics dicts carry int keys;
        # both codecs must deliver them as the same strings.
        payload = {
            "lag_counts": {0: 3, 17: 1},
            "by_float": {2.5: "x"},
            "by_bool": {True: 1, False: 2},
            "by_none": {None: "n"},
        }
        response = ApiResponse(ok=True, payload=payload)
        frame = wire.encode_response_frame(response, corr_id=1)
        _, _, raw = wire.read_frame(io.BytesIO(frame))
        via_binary = wire.decode_response_payload(raw).payload
        via_json = json.loads(json.dumps(payload))
        assert via_binary == via_json

    def test_unserializable_dict_key_rejected(self):
        with pytest.raises(ValidationError):
            wire.encode_response_frame(
                ApiResponse(ok=True, payload={(1, 2): "tuple key"}), 0
            )


class TestCodecEquivalence:
    """Every request/response must round-trip identically through the
    JSON-lines codec and the binary codec."""

    @pytest.mark.parametrize("request_obj", REQUEST_CATALOG, ids=repr)
    def test_request_equivalence(self, request_obj):
        # JSON flattens ndarrays to float lists and rebuilds float64;
        # binary preserves them natively — the decoded values must agree.
        via_json = decode_request(encode_request(request_obj))
        via_binary = binary_roundtrip_request(request_obj)
        assert_requests_equal(via_json, via_binary)

    @pytest.mark.parametrize("response", RESPONSE_CATALOG, ids=repr)
    def test_response_equivalence(self, response):
        via_json = decode_response(encode_response(response))
        frame = wire.encode_response_frame(response, 0)
        _, _, payload = wire.read_frame(io.BytesIO(frame))
        via_binary = wire.decode_response_payload(payload)
        assert via_json == via_binary == response


class _JsonOnlyHandler(socketserver.StreamRequestHandler):
    """The pre-binary server loop, kept verbatim for fallback testing."""

    def handle(self):
        for raw in self.rfile:
            line = raw.decode("utf-8").strip()
            if not line:
                continue
            try:
                request = decode_request(line)
                response = ApiResponse(
                    ok=True, payload={"echo": request.method}
                )
            except ValidationError as err:
                response = ApiResponse(ok=False, error=str(err))
            self.wfile.write((encode_response(response) + "\n").encode())
            self.wfile.flush()


@pytest.fixture
def json_only_server():
    """A legacy JSON-lines-only TCP server (no binary negotiation)."""
    server = socketserver.ThreadingTCPServer(("127.0.0.1", 0), _JsonOnlyHandler)
    server.daemon_threads = True
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.server_address
    finally:
        server.shutdown()
        server.server_close()


class TestNegotiation:
    def test_pipelined_client_negotiates_binary(self, deployed_velox):
        with VeloxServer(deployed_velox) as server:
            with PipelinedClient(server.host, server.port) as client:
                assert client.protocol == "binary"
                response = client.call(PredictApiRequest(uid=2, item=8))
                assert response.ok
                assert isinstance(response.payload["score"], float)

    def test_json_client_still_works_against_new_server(self, deployed_velox):
        """Old JSON-lines clients round-trip against the binary-capable
        server: the peek-based negotiation must leave their first
        request intact."""
        with VeloxServer(deployed_velox) as server:
            with RemoteClient(server.host, server.port) as client:
                response = client.call(PredictApiRequest(uid=2, item=8))
                assert response.ok
                response = client.call(TopKApiRequest(uid=2, items=(1, 2), k=1))
                assert response.ok

    def test_pipelined_client_falls_back_to_json(self, json_only_server):
        host, port = json_only_server
        with PipelinedClient(host, port) as client:
            assert client.protocol == "json"
            response = client.call(PredictApiRequest(uid=1, item=2))
            assert response.ok
            assert response.payload["echo"] == "predict"
            # pipelining still works in-order over JSON lines
            futures = [
                client.submit(PredictApiRequest(uid=1, item=i))
                for i in range(10)
            ]
            assert all(f.result(5).ok for f in futures)

    def test_mixed_protocol_clients_share_a_server(self, deployed_velox):
        with VeloxServer(deployed_velox) as server:
            with (
                RemoteClient(server.host, server.port) as old,
                PipelinedClient(server.host, server.port) as new,
            ):
                a = old.call(PredictApiRequest(uid=2, item=8))
                b = new.call(PredictApiRequest(uid=2, item=8))
                assert a.ok and b.ok
                assert a.payload["score"] == pytest.approx(b.payload["score"])


class TestPipelinedClient:
    def test_many_in_flight_correct_correlation(self, deployed_velox):
        """A burst of pipelined requests comes back correctly matched
        even when the engine serves them out of submission order."""
        engine = deployed_velox.serving_engine(
            ServingConfig(num_workers=2, batching="adaptive", slo_p99=1.0)
        )
        expected = {
            (uid, item): deployed_velox.service.predict("songs", uid, item).score
            for uid in range(4)
            for item in range(12)
        }
        with VeloxServer(deployed_velox, engine=engine) as server:
            with PipelinedClient(server.host, server.port) as client:
                futures = {
                    (uid, item): client.submit(
                        PredictApiRequest(uid=uid, item=item)
                    )
                    for uid in range(4)
                    for item in range(12)
                }
                for (uid, item), future in futures.items():
                    response = future.result(timeout=30)
                    assert response.ok, response.error
                    assert response.payload["item"] == item
                    assert response.payload["score"] == pytest.approx(
                        expected[(uid, item)], abs=1e-9
                    )
        completed = sum(m.completed for m in engine.queue_metrics().values())
        assert completed == 48

    def test_single_connection_fills_adaptive_batches(self, deployed_velox):
        """The point of the pipelined intake: one socket keeps enough
        requests in flight that the engine forms real batches."""
        engine = deployed_velox.serving_engine(
            ServingConfig(
                num_workers=1,
                batching="fixed_delay",
                batch_delay=0.02,
                max_batch_size=64,
                slo_p99=5.0,
                max_queue_age=10.0,
            )
        )
        with VeloxServer(deployed_velox, engine=engine) as server:
            with PipelinedClient(server.host, server.port) as client:
                futures = [
                    client.submit(PredictApiRequest(uid=1, item=item))
                    for item in range(40)
                ]
                for future in futures:
                    assert future.result(timeout=30).ok
        (metrics,) = [
            m for m in engine.queue_metrics().values() if m.completed
        ]
        assert metrics.batch_sizes.mean() > 1.0

    def test_top_k_and_admin_requests_over_binary(self, deployed_velox):
        engine = deployed_velox.serving_engine(ServingConfig(num_workers=1))
        with VeloxServer(deployed_velox, engine=engine) as server:
            with PipelinedClient(server.host, server.port) as client:
                top = client.call(TopKApiRequest(uid=2, items=(1, 2, 3), k=2))
                assert top.ok and len(top.payload["items"]) == 2
                health = client.call(HealthApiRequest())
                assert health.ok
                status = client.call(StatusApiRequest())
                assert status.ok and status.payload["num_nodes"] == 2

    def test_ndarray_item_over_binary_wire(self, deployed_velox):
        """Computed-feature payloads cross the wire as raw bytes and
        still serve."""
        with VeloxServer(deployed_velox) as server:
            with PipelinedClient(server.host, server.port) as client:
                response = client.call(
                    PredictApiRequest(uid=1, item=3, model="songs")
                )
                assert response.ok

    def test_shed_requests_surface_as_error_envelopes(self, deployed_velox):
        engine = deployed_velox.serving_engine(
            ServingConfig(max_queue_depth=0)
        )
        with VeloxServer(deployed_velox, engine=engine) as server:
            with PipelinedClient(server.host, server.port) as client:
                response = client.call(PredictApiRequest(uid=1, item=2))
                assert not response.ok
                assert "OverloadedError" in response.error
                # connection still serves subsequent requests
                response = client.call(HealthApiRequest())
                assert response.ok

    def test_malformed_frame_gets_error_response(self, deployed_velox):
        with VeloxServer(deployed_velox) as server:
            with PipelinedClient(server.host, server.port) as client:
                # a well-framed but bogus opcode
                client._sock.sendall(wire.encode_frame(99, 5, b""))
                response = client.call(PredictApiRequest(uid=1, item=2))
                assert response.ok  # the connection survived

    def test_connection_pool_round_robins(self, deployed_velox):
        with VeloxServer(deployed_velox) as server:
            with ConnectionPool(server.host, server.port, size=3) as pool:
                assert len(pool) == 3
                assert pool.protocol == "binary"
                futures = [
                    pool.submit(PredictApiRequest(uid=1, item=i))
                    for i in range(9)
                ]
                assert all(f.result(10).ok for f in futures)

    def test_close_fails_pending_futures(self, deployed_velox):
        with VeloxServer(deployed_velox) as server:
            client = PipelinedClient(server.host, server.port)
            client.close()
            with pytest.raises(TransportError):
                client.submit(PredictApiRequest(uid=1, item=2))


class TestTransportErrors:
    def test_remote_client_times_out_with_typed_error(self):
        """A server that accepts but never answers: ``call`` raises
        TransportError within the timeout instead of blocking forever."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        try:
            client = RemoteClient(host, port, timeout=0.3)
            with pytest.raises(TransportError):
                client.call(PredictApiRequest(uid=1, item=2))
            # the failed client closed its socket and refuses reuse
            with pytest.raises(TransportError):
                client.call(PredictApiRequest(uid=1, item=2))
        finally:
            listener.close()

    def test_remote_client_half_written_response_bounded(self):
        """A server trickling a response without the newline cannot
        stall ``call`` past the deadline."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()

        def trickle():
            conn, _ = listener.accept()
            conn.recv(4096)
            for _ in range(10):
                try:
                    conn.sendall(b'{"ok"')
                except OSError:
                    break
                threading.Event().wait(0.1)
            conn.close()

        thread = threading.Thread(target=trickle, daemon=True)
        thread.start()
        try:
            client = RemoteClient(host, port, timeout=0.4)
            with pytest.raises(TransportError):
                client.call(PredictApiRequest(uid=1, item=2))
        finally:
            listener.close()

    def test_connection_drop_fails_pipelined_pending(self):
        """A server that dies mid-stream fails every outstanding future
        with TransportError instead of leaving them pending forever."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()

        def accept_then_drop():
            conn, _ = listener.accept()
            conn.recv(len(wire.HELLO))
            conn.sendall(wire.HELLO)  # accept binary...
            conn.recv(65536)  # ...take one frame...
            conn.close()  # ...and vanish

        thread = threading.Thread(target=accept_then_drop, daemon=True)
        thread.start()
        try:
            client = PipelinedClient(host, port)
            assert client.protocol == "binary"
            future = client.submit(PredictApiRequest(uid=1, item=2))
            with pytest.raises(TransportError):
                future.result(timeout=5)
            client.close()
        finally:
            listener.close()

"""BatchContext: the sparklite driver entry point (SparkContext analogue)."""

from __future__ import annotations

from itertools import count
from typing import Callable, Iterator

from repro.batch.dataset import (
    Dataset,
    ParallelCollectionDataset,
    RangeDataset,
    TableScanDataset,
)
from repro.batch.scheduler import DAGScheduler, FailureInjector
from repro.batch.shared import Accumulator, Broadcast


class BatchContext:
    """Creates datasets and owns the scheduler that executes them.

    ``default_parallelism`` sets both the default partition count for new
    datasets and the scheduler's worker-pool width (1 = inline, fully
    deterministic execution). ``executor`` selects how a stage's tasks
    run when the pool is wider than 1: ``"thread"`` (GIL-bound, shares
    driver memory) or ``"fork"`` (process-per-worker, true multicore for
    the CPU-bound ALS solves; falls back to threads where ``os.fork``
    is unavailable).
    """

    def __init__(
        self,
        default_parallelism: int = 4,
        max_task_attempts: int = 4,
        injector: FailureInjector | None = None,
        executor: str = "thread",
    ):
        if default_parallelism < 1:
            raise ValueError(
                f"default_parallelism must be >= 1, got {default_parallelism}"
            )
        self.default_parallelism = default_parallelism
        self.scheduler = DAGScheduler(
            parallelism=default_parallelism,
            max_task_attempts=max_task_attempts,
            injector=injector,
            executor=executor,
        )
        self._dataset_ids = count()
        self._shuffle_ids = count()
        self._broadcast_ids = count()
        self._accumulator_ids = count()

    # -- id allocation (used by Dataset/ShuffleDependency) ----------------

    def new_dataset_id(self) -> int:
        """Allocate a unique dataset id."""
        return next(self._dataset_ids)

    def new_shuffle_id(self) -> int:
        """Allocate a unique shuffle id."""
        return next(self._shuffle_ids)

    # -- dataset constructors ----------------------------------------------

    def parallelize(self, data, num_partitions: int | None = None) -> Dataset:
        """Distribute a local collection."""
        data = list(data)
        if num_partitions is None:
            num_partitions = min(self.default_parallelism, max(1, len(data)))
        return ParallelCollectionDataset(self, data, num_partitions)

    def range(
        self,
        start: int,
        stop: int | None = None,
        step: int = 1,
        num_partitions: int | None = None,
    ) -> Dataset:
        """A lazily generated integer range dataset."""
        if stop is None:
            start, stop = 0, start
        n = num_partitions or self.default_parallelism
        return RangeDataset(self, start, stop, step, n)

    def from_table(self, table) -> Dataset:
        """Scan a veloxstore table, one partition per storage partition."""
        return TableScanDataset(self, table)

    # -- shared state ----------------------------------------------------------

    def broadcast(self, value) -> Broadcast:
        """Share a read-only value with every task (e.g. the frozen
        factor matrix each ALS half-iteration solves against)."""
        return Broadcast(next(self._broadcast_ids), value)

    def accumulator(self, zero=0, merge_fn=None) -> Accumulator:
        """A task-writable, driver-readable aggregate."""
        return Accumulator(next(self._accumulator_ids), zero, merge_fn)

    def checkpoint(self, dataset: Dataset) -> Dataset:
        """Materialize a dataset and sever its lineage.

        Long lineage chains (e.g. iterative ALS reusing the previous
        iteration's output) are cut by computing the data once and
        re-parallelizing it, exactly like Spark's checkpointing.
        """
        partitions = self.run_job(dataset, list)
        data = [record for part in partitions for record in part]
        return ParallelCollectionDataset(self, data, dataset.num_partitions)

    # -- execution -----------------------------------------------------------

    def run_job(
        self,
        dataset: Dataset,
        result_fn: Callable[[Iterator], object],
        partitions: list[int] | None = None,
        local_only: bool = False,
    ) -> list:
        """Execute ``result_fn`` over the dataset's partitions.

        ``local_only`` pins the job to in-process execution (see
        :meth:`DAGScheduler.run_job`)."""
        return self.scheduler.run_job(
            dataset, result_fn, partitions, local_only=local_only
        )

    @property
    def executor(self) -> str:
        """The configured executor mode (``"thread"`` or ``"fork"``)."""
        return self.scheduler.executor

    @property
    def metrics(self):
        """The scheduler's job/task counters."""
        return self.scheduler.metrics

"""Heartbeat-based failure detection.

Every node is expected to heartbeat at least once per ``timeout``
seconds; a node whose last heartbeat is older than that is declared
dead exactly once (``check`` returns it in the newly-dead list and the
detector remembers the verdict until the node heartbeats again).

Two evidence channels drive the verdict, mirroring production servers:

* the periodic heartbeat scan (``check``), the slow-path backstop, and
* explicit failure reports (``report_failure``) from callers that just
  hit a connection/partition error — a read against a dead primary is
  stronger and *faster* evidence than a missed heartbeat, so failover
  latency is bounded by the serving path, not the heartbeat interval.
"""

from __future__ import annotations

from repro.common.clock import Clock, SystemClock
from repro.common.errors import ReplicationError


class FailureDetector:
    """Tracks per-node heartbeat freshness against a timeout."""

    def __init__(self, node_ids, timeout: float, clock: Clock | None = None):
        if timeout <= 0:
            raise ReplicationError(f"timeout must be > 0, got {timeout}")
        self.timeout = timeout
        self.clock = clock if clock is not None else SystemClock()
        now = self.clock.now()
        # Every node starts trusted: the grace period before the first
        # heartbeat equals one full timeout.
        self._last_heartbeat: dict[int, float] = {n: now for n in node_ids}
        self._dead: set[int] = set()

    # -- evidence -----------------------------------------------------------

    def heartbeat(self, node_id: int, now: float | None = None) -> None:
        """Record one heartbeat; clears any standing death verdict."""
        at = now if now is not None else self.clock.now()
        self._last_heartbeat[node_id] = at
        self._dead.discard(node_id)

    def report_failure(self, node_id: int) -> bool:
        """Direct failure evidence (e.g. a read error against the node).

        Ages the node's heartbeat past the timeout so the next ``check``
        declares it dead immediately. Returns True when this report is
        new evidence (the node was not already declared dead).
        """
        if node_id in self._dead:
            return False
        self._last_heartbeat[node_id] = (
            self.clock.now() - self.timeout - 1.0
        )
        return True

    # -- verdicts -----------------------------------------------------------

    def is_dead(self, node_id: int) -> bool:
        """Whether the node is currently declared dead."""
        return node_id in self._dead

    def check(self, now: float | None = None) -> list[int]:
        """Scan heartbeat freshness; returns nodes newly declared dead.

        A node appears in the result exactly once per death: repeated
        checks against the same stale heartbeat return an empty list.
        """
        at = now if now is not None else self.clock.now()
        newly_dead = []
        for node_id, last in self._last_heartbeat.items():
            if node_id in self._dead:
                continue
            if at - last > self.timeout:
                self._dead.add(node_id)
                newly_dead.append(node_id)
        return sorted(newly_dead)

    def dead_nodes(self) -> list[int]:
        """All nodes currently declared dead."""
        return sorted(self._dead)

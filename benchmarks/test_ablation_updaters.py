"""Ablation: online-updater choice — accuracy vs compute cost.

Section 4.2 presents the naive normal-equations update (Eq. 2, cubic in
d) and notes the Sherman–Morrison O(d²) alternative; SGD is the obvious
cheaper-still candidate. This ablation runs the same Section 4.2
protocol under each updater and reports holdout RMSE next to total
update compute time, making the design choice the paper made (exact
incremental updates) quantitative.

Shape assertions: normal equations and Sherman–Morrison reach the same
accuracy (they are algebraically identical); Sherman–Morrison is
cheaper; SGD is cheapest but loses accuracy.
"""

from __future__ import annotations

import time

import pytest

from repro import Velox, VeloxConfig
from repro.batch import BatchContext
from repro.core.models import MatrixFactorizationModel
from repro.core.offline import als_train
from repro.data import SynthLensConfig, generate_synthlens, paper_protocol_split
from repro.metrics import rmse

from conftest import write_result

CORPUS = SynthLensConfig(
    num_users=200,
    num_items=150,
    rank=8,
    ratings_per_user_mean=40.0,
    min_ratings_per_user=20,
    seed=9,
)
METHODS = ["normal_equations", "sherman_morrison", "sgd"]


def run_method(method: str) -> dict[str, float]:
    lens = generate_synthlens(CORPUS)
    split = paper_protocol_split(lens.ratings)
    ctx = BatchContext(default_parallelism=4)
    als = als_train(
        ctx,
        [(r.uid, r.item_id, r.rating) for r in split.init],
        rank=CORPUS.rank,
        num_items=CORPUS.num_items,
        num_iterations=8,
    )
    model = MatrixFactorizationModel(
        "songs", als.item_factors, als.item_bias, als.global_mean
    )
    weights = {
        uid: model.pack_user_weights(als.user_factors[uid], als.user_bias[uid])
        for uid in als.user_factors
    }
    velox = Velox.deploy(
        VeloxConfig(num_nodes=2, online_update_method=method), auto_retrain=False
    )
    velox.add_model(model, initial_user_weights=weights)

    start = time.perf_counter()
    for r in split.stream:
        velox.observe(uid=r.uid, x=r.item_id, y=r.rating)
    update_seconds = time.perf_counter() - start

    truth = [r.rating for r in split.holdout]
    error = rmse(
        truth, [velox.predict(None, r.uid, r.item_id)[1] for r in split.holdout]
    )
    return {"holdout_rmse": error, "update_seconds": update_seconds}


@pytest.mark.parametrize("method", METHODS)
def test_updater_method(benchmark, method):
    benchmark.pedantic(run_method, args=(method,), rounds=1, iterations=1)


def test_updaters_summary(benchmark):
    results = {m: run_method(m) for m in METHODS}
    lines = ["updater            holdout_rmse  total_update_s"]
    for method in METHODS:
        row = results[method]
        lines.append(
            f"{method:<19}{row['holdout_rmse']:<14.4f}{row['update_seconds']:.3f}"
        )
    write_result("ablation_updaters", lines)

    ne, sm, sgd = (results[m] for m in METHODS)
    # Algebraic identity: NE and SM land on the same weights.
    assert abs(ne["holdout_rmse"] - sm["holdout_rmse"]) < 1e-6
    # SM is never slower than the from-scratch solve at this dimension.
    assert sm["update_seconds"] <= ne["update_seconds"]
    # SGD is cheapest but pays in accuracy.
    assert sgd["update_seconds"] <= sm["update_seconds"] * 1.5
    assert sgd["holdout_rmse"] > sm["holdout_rmse"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Heartbeat failure detector: timeouts, one-shot verdicts, reports."""

from __future__ import annotations

import pytest

from repro.common.clock import SimulatedClock
from repro.common.errors import ReplicationError
from repro.replication import FailureDetector


@pytest.fixture
def clock():
    return SimulatedClock()


@pytest.fixture
def detector(clock):
    return FailureDetector([0, 1, 2], timeout=1.0, clock=clock)


class TestVerdicts:
    def test_rejects_nonpositive_timeout(self, clock):
        with pytest.raises(ReplicationError):
            FailureDetector([0], timeout=0.0, clock=clock)

    def test_fresh_nodes_are_alive(self, detector):
        assert detector.check() == []
        assert detector.dead_nodes() == []

    def test_grace_period_is_one_timeout(self, clock, detector):
        clock.advance(0.9)
        assert detector.check() == []
        clock.advance(0.2)
        assert detector.check() == [0, 1, 2]

    def test_heartbeat_keeps_node_alive(self, clock, detector):
        clock.advance(0.9)
        detector.heartbeat(1)
        clock.advance(0.5)
        assert detector.check() == [0, 2]
        assert detector.is_dead(0) and not detector.is_dead(1)

    def test_death_reported_exactly_once(self, clock, detector):
        clock.advance(2.0)
        assert detector.check() == [0, 1, 2]
        assert detector.check() == []
        assert detector.dead_nodes() == [0, 1, 2]

    def test_heartbeat_revives(self, clock, detector):
        clock.advance(2.0)
        detector.check()
        detector.heartbeat(1)
        assert not detector.is_dead(1)
        assert detector.dead_nodes() == [0, 2]
        # ...and a revived node can die again (a second one-shot verdict).
        clock.advance(2.0)
        assert detector.check() == [1]


class TestFailureReports:
    def test_report_makes_next_check_declare_dead(self, detector):
        """Direct read-failure evidence beats the heartbeat timeout —
        no clock advancement is needed for the verdict."""
        assert detector.report_failure(2) is True
        assert detector.check() == [2]

    def test_report_on_already_dead_node_is_old_news(self, clock, detector):
        clock.advance(2.0)
        detector.check()
        assert detector.report_failure(0) is False

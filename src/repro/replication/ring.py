"""Consistent-hash ring with virtual nodes: N-way replica placement.

The replication layer needs a placement function that (a) spreads each
partition's followers across the cluster, (b) is a pure function of the
node set (no placement map to gossip), and (c) moves few replica
assignments when a node joins or leaves. A consistent-hash ring with
virtual nodes gives all three: every physical node owns ``virtual_nodes``
points on a 64-bit ring, and the replicas for a key are the first N
distinct physical nodes clockwise from the key's hash.

Placement here chooses *followers*; primaries stay with the partition
owner (the cluster's partitioner), so the storage layer and the router
keep agreeing on who serves a partition in the healthy case.
"""

from __future__ import annotations

import bisect

from repro.common.errors import ReplicationError
from repro.common.rng import stable_hash


class HashRing:
    """A consistent-hash ring over integer node ids.

    ``replicas(key, n)`` walks clockwise from ``hash(key)`` and returns
    the first ``n`` *distinct* node ids — deterministic, uniform in
    expectation, and stable under node churn (removing one node only
    reassigns the vnode arcs it owned).
    """

    def __init__(self, node_ids, virtual_nodes: int = 64):
        if virtual_nodes < 1:
            raise ReplicationError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}"
            )
        self.virtual_nodes = virtual_nodes
        self._nodes: set[int] = set()
        #: sorted (point, node_id) pairs; rebuilt incrementally on churn.
        self._points: list[tuple[int, int]] = []
        for node_id in node_ids:
            self.add_node(node_id)
        if not self._nodes:
            raise ReplicationError("hash ring requires at least one node")

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def node_ids(self) -> list[int]:
        """Sorted physical node ids currently on the ring."""
        return sorted(self._nodes)

    def _vnode_points(self, node_id: int) -> list[tuple[int, int]]:
        return [
            (stable_hash(f"ring:{node_id}#{v}"), node_id)
            for v in range(self.virtual_nodes)
        ]

    def add_node(self, node_id: int) -> None:
        """Place a node's virtual nodes on the ring (idempotent)."""
        if node_id in self._nodes:
            return
        self._nodes.add(node_id)
        self._points.extend(self._vnode_points(node_id))
        self._points.sort()

    def remove_node(self, node_id: int) -> None:
        """Remove a node's virtual nodes from the ring (idempotent)."""
        if node_id not in self._nodes:
            return
        self._nodes.discard(node_id)
        self._points = [p for p in self._points if p[1] != node_id]

    def replicas(self, key: object, n: int) -> list[int]:
        """The first ``n`` distinct nodes clockwise from ``hash(key)``.

        Returns fewer than ``n`` ids when the ring holds fewer physical
        nodes (a 2-node cluster cannot give 3-way placement).
        """
        if n < 1:
            raise ReplicationError(f"replica count must be >= 1, got {n}")
        start = bisect.bisect_left(self._points, (stable_hash(key), -1))
        chosen: list[int] = []
        seen: set[int] = set()
        for offset in range(len(self._points)):
            _, node_id = self._points[(start + offset) % len(self._points)]
            if node_id in seen:
                continue
            seen.add(node_id)
            chosen.append(node_id)
            if len(chosen) == n:
                break
        return chosen

    def primary(self, key: object) -> int:
        """The first node clockwise from ``hash(key)``."""
        return self.replicas(key, 1)[0]

"""Shadow evaluation: score a candidate model on live traffic before
promoting it.

Section 4.3's lifecycle story — "maintains statistics about model
performance and version histories, enabling easier diagnostics of model
quality regression and simple rollbacks" — implies the operational
question this module answers: *is the retrained candidate actually
better than what is serving, on today's traffic?* A
:class:`ShadowEvaluator` rides along the observe stream: every labelled
observation is scored by both the serving model and a shadow candidate,
the paired losses accumulate, and a paired z-test decides promotion.

The candidate serves nothing while shadowed, so a bad retrain can never
hurt users — it just fails its evaluation and is discarded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.metrics.streaming import StreamingMeanVar


@dataclass(frozen=True)
class ShadowReport:
    """Paired comparison of candidate vs serving model."""

    observations: int
    serving_mean_loss: float
    candidate_mean_loss: float
    mean_difference: float  # serving - candidate; positive favours candidate
    z_score: float
    significant: bool
    candidate_wins: bool


class ShadowEvaluator:
    """Paired loss comparison between the serving model and a candidate.

    Attach with :meth:`observe_pair` (typically from the same code path
    that calls ``velox.observe``). Read the verdict with :meth:`report`
    or let :meth:`should_promote` apply the decision rule: statistically
    significant improvement (|z| above ``z_threshold``) in the
    candidate's favour after at least ``min_observations`` pairs.
    """

    def __init__(
        self,
        velox,
        model_name: str,
        candidate,
        candidate_weights: dict | None = None,
        min_observations: int = 50,
        z_threshold: float = 1.96,
    ):
        if min_observations < 2:
            raise ValidationError(
                f"min_observations must be >= 2, got {min_observations}"
            )
        if z_threshold <= 0:
            raise ValidationError(f"z_threshold must be > 0, got {z_threshold}")
        if candidate.dimension != velox.model(model_name).dimension and (
            candidate_weights is None
        ):
            raise ValidationError(
                "candidate has a different weight dimension; supply "
                "candidate_weights"
            )
        self.velox = velox
        self.model_name = model_name
        self.candidate = candidate
        self.candidate_weights = candidate_weights or {}
        self.min_observations = min_observations
        self.z_threshold = z_threshold
        self._differences = StreamingMeanVar()
        self._serving_loss = StreamingMeanVar()
        self._candidate_loss = StreamingMeanVar()

    def _candidate_score(self, uid: int, x: object) -> float:
        features = self.candidate.validate_features(self.candidate.features(x))
        weights = self.candidate_weights.get(uid)
        if weights is None:
            table = self.velox.manager.user_state_table(self.model_name)
            state = table.get_or_default(uid)
            if state is not None and state.weights.shape == features.shape:
                weights = state.weights
            else:
                weights = self.candidate.initial_user_weights()
        return float(np.asarray(weights, float) @ features)

    def observe_pair(self, uid: int, x: object, y: float) -> None:
        """Score one labelled observation with both models.

        Uses the *pre-update* serving prediction so the comparison is
        honest (the serving model must not get credit for having just
        seen the label). Call this **instead of** scoring manually,
        alongside the normal ``velox.observe``.
        """
        serving_score = self.velox.predict_detailed(self.model_name, uid, x).score
        candidate_score = self._candidate_score(uid, x)
        model = self.velox.model(self.model_name)
        serving_loss = model.loss(y, serving_score, x, uid)
        candidate_loss = self.candidate.loss(y, candidate_score, x, uid)
        self._serving_loss.update(serving_loss)
        self._candidate_loss.update(candidate_loss)
        self._differences.update(serving_loss - candidate_loss)

    def report(self) -> ShadowReport:
        """The current paired-comparison verdict."""
        count = self._differences.count
        if count < 2:
            raise ValidationError(
                "need at least 2 paired observations for a shadow report"
            )
        mean_diff = self._differences.mean
        std = self._differences.std
        if std == 0.0:
            z_score = 0.0 if mean_diff == 0.0 else math.copysign(math.inf, mean_diff)
        else:
            z_score = mean_diff / (std / math.sqrt(count))
        significant = (
            count >= self.min_observations and abs(z_score) >= self.z_threshold
        )
        return ShadowReport(
            observations=count,
            serving_mean_loss=self._serving_loss.mean,
            candidate_mean_loss=self._candidate_loss.mean,
            mean_difference=mean_diff,
            z_score=z_score,
            significant=significant,
            candidate_wins=significant and mean_diff > 0,
        )

    def should_promote(self) -> bool:
        """True once the candidate is a statistically significant win."""
        if self._differences.count < self.min_observations:
            return False
        return self.report().candidate_wins

    def promote(self, note: str = "shadow evaluation win"):
        """Publish the candidate as the new serving version.

        Installs ``candidate_weights`` (when provided) as fresh user
        states, exactly like a retrain swap; raises if the evaluation
        has not been won.
        """
        if not self.should_promote():
            raise ValidationError(
                "candidate has not won its shadow evaluation; refusing to promote"
            )
        manager = self.velox.manager
        current = self.velox.model(self.model_name)
        candidate = self.candidate
        if candidate.version <= current.version:
            candidate = candidate.with_version(current.version + 1)
        with manager._write_lock:
            self.velox.registry.publish(candidate, note=note)
            if self.candidate_weights:
                table = manager.user_state_table(self.model_name)
                from repro.core.bootstrap import UserWeightAverager

                averager = UserWeightAverager(candidate.dimension)
                for uid, weights in self.candidate_weights.items():
                    state = manager._make_state(candidate, np.asarray(weights, float))
                    table.put(uid, state)
                    averager.update(uid, state.weights)
                manager.averagers[self.model_name] = averager
            self.velox.service.invalidate_model(self.model_name)
            manager.health[self.model_name].reset_after_retrain()
        return candidate

"""A deterministic network cost model for the simulated cluster.

Remote data accesses are charged ``hop_latency + size / bandwidth``
seconds of virtual time on a :class:`SimulatedClock`; local accesses are
free. The routing ablation benchmark reports these counters to show that
user-aware routing keeps all user-weight traffic local (paper Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.clock import Clock, SimulatedClock


@dataclass
class NetworkStats:
    """Counters for one :class:`NetworkModel` lifetime."""

    local_accesses: int = 0
    remote_accesses: int = 0
    bytes_transferred: int = 0
    modeled_latency: float = 0.0

    @property
    def total_accesses(self) -> int:
        """Local plus remote accesses."""
        return self.local_accesses + self.remote_accesses

    @property
    def locality_rate(self) -> float:
        """Fraction of accesses served locally; 1.0 when idle."""
        if self.total_accesses == 0:
            return 1.0
        return self.local_accesses / self.total_accesses

    def reset(self) -> None:
        """Zero every counter."""
        self.local_accesses = 0
        self.remote_accesses = 0
        self.bytes_transferred = 0
        self.modeled_latency = 0.0


class NetworkModel:
    """Charges virtual time for data movement between nodes."""

    def __init__(
        self,
        hop_latency: float = 0.5e-3,
        bandwidth: float = 1e9,
        clock: Clock | None = None,
    ):
        if hop_latency < 0:
            raise ValueError(f"hop_latency must be >= 0, got {hop_latency}")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        self.hop_latency = hop_latency
        self.bandwidth = bandwidth
        self.clock = clock if clock is not None else SimulatedClock()
        self.stats = NetworkStats()

    def transfer_cost(self, size_bytes: int) -> float:
        """Modeled seconds for one remote transfer of ``size_bytes``."""
        if size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {size_bytes}")
        return self.hop_latency + size_bytes / self.bandwidth

    def access(self, from_node: int, to_node: int, size_bytes: int) -> float:
        """Record a data access; returns the modeled latency charged.

        A same-node access is local and free; a cross-node access is
        charged one hop plus serialization time.
        """
        if from_node == to_node:
            self.stats.local_accesses += 1
            return 0.0
        cost = self.transfer_cost(size_bytes)
        self.stats.remote_accesses += 1
        self.stats.bytes_transferred += size_bytes
        self.stats.modeled_latency += cost
        self.clock.advance(cost)
        return cost

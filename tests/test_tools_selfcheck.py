"""The install self-check tool."""

import pytest

from repro.tools.selfcheck import main, run_selfcheck


class TestSelfcheck:
    def test_runs_clean(self):
        summary = run_selfcheck(verbose=False)
        assert summary["online_rmse"] < summary["baseline_rmse"]
        assert summary["retrained_rmse"] < summary["baseline_rmse"]
        assert summary["retrain_version"] == 1

    def test_main_exit_code(self, capsys):
        assert main(["--quiet"]) == 0

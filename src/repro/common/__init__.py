"""Shared infrastructure: errors, configuration, RNG plumbing, clocks.

Everything in :mod:`repro` that needs a random stream takes an explicit
``numpy.random.Generator`` (or a seed) so experiments are reproducible;
everything that needs time takes a :class:`Clock` so simulated components
can run on virtual time while benchmarks run on wall-clock time.
"""

from repro.common.errors import (
    ReproError,
    ConfigError,
    ModelNotFoundError,
    UserNotFoundError,
    ItemNotFoundError,
    StorageError,
    KeyNotFoundError,
    PartitionError,
    VersionConflictError,
    BatchExecutionError,
    TaskFailedError,
    RoutingError,
    StaleModelError,
    ValidationError,
)
from repro.common.rng import as_generator, spawn_generators, stable_hash
from repro.common.clock import Clock, SystemClock, SimulatedClock
from repro.common.config import VeloxConfig

__all__ = [
    "ReproError",
    "ConfigError",
    "ModelNotFoundError",
    "UserNotFoundError",
    "ItemNotFoundError",
    "StorageError",
    "KeyNotFoundError",
    "PartitionError",
    "VersionConflictError",
    "BatchExecutionError",
    "TaskFailedError",
    "RoutingError",
    "StaleModelError",
    "ValidationError",
    "as_generator",
    "spawn_generators",
    "stable_hash",
    "Clock",
    "SystemClock",
    "SimulatedClock",
    "VeloxConfig",
]

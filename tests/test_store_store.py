"""VeloxStore: namespaces, logs, node-level failure hooks."""

import pytest

from repro.common.errors import StorageError
from repro.store import VeloxStore


class TestTables:
    def test_create_and_fetch(self):
        store = VeloxStore(default_partitions=2)
        table = store.create_table("users")
        assert store.table("users") is table
        assert table.num_partitions == 2

    def test_duplicate_create_rejected(self):
        store = VeloxStore()
        store.create_table("t")
        with pytest.raises(StorageError):
            store.create_table("t")

    def test_missing_table_rejected(self):
        with pytest.raises(StorageError):
            VeloxStore().table("ghost")

    def test_get_or_create(self):
        store = VeloxStore()
        a = store.get_or_create_table("t")
        b = store.get_or_create_table("t")
        assert a is b

    def test_drop_table(self):
        store = VeloxStore()
        store.create_table("t")
        store.drop_table("t")
        assert not store.has_table("t")
        with pytest.raises(StorageError):
            store.drop_table("t")

    def test_table_names_sorted(self):
        store = VeloxStore()
        store.create_table("zeta")
        store.create_table("alpha")
        assert store.table_names() == ["alpha", "zeta"]

    def test_explicit_partition_count_overrides_default(self):
        store = VeloxStore(default_partitions=2)
        table = store.create_table("wide", num_partitions=8)
        assert table.num_partitions == 8

    def test_invalid_default_partitions(self):
        with pytest.raises(ValueError):
            VeloxStore(default_partitions=0)


class TestLogs:
    def test_create_and_fetch_log(self):
        store = VeloxStore()
        log = store.create_log("obs")
        assert store.log("obs") is log

    def test_duplicate_log_rejected(self):
        store = VeloxStore()
        store.create_log("obs")
        with pytest.raises(StorageError):
            store.create_log("obs")

    def test_missing_log_rejected(self):
        with pytest.raises(StorageError):
            VeloxStore().log("ghost")

    def test_get_or_create_log(self):
        store = VeloxStore()
        assert store.get_or_create_log("x") is store.get_or_create_log("x")

    def test_log_names(self):
        store = VeloxStore()
        store.create_log("b")
        store.create_log("a")
        assert store.log_names() == ["a", "b"]


class TestNodeFailureHooks:
    def test_fail_and_recover_node_across_tables(self):
        store = VeloxStore(default_partitions=3)
        t1 = store.create_table("one", partitioner=lambda k: k % 3)
        t2 = store.create_table("two", partitioner=lambda k: k % 3)
        for i in range(9):
            t1.put(i, i)
            t2.put(i, -i)
        store.fail_node(1)
        assert t1.partition(1).failed and t2.partition(1).failed
        replayed = store.recover_node(1)
        assert replayed == 6  # 3 keys per table on partition 1
        assert t1.get(4) == 4
        assert t2.get(7) == -7

    def test_snapshot_all_then_recover(self):
        store = VeloxStore(default_partitions=2)
        table = store.create_table("t", partitioner=lambda k: k % 2)
        for i in range(6):
            table.put(i, i)
        store.snapshot_all()
        table.put(100, 100)
        store.fail_node(0)
        replayed = store.recover_node(0)
        assert replayed == 1  # only the post-snapshot write on partition 0
        assert len(table) == 7

    def test_recover_healthy_node_is_noop(self):
        store = VeloxStore(default_partitions=2)
        store.create_table("t")
        assert store.recover_node(0) == 0

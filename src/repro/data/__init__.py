"""Datasets: the SynthLens generator and split utilities.

The paper evaluates on MovieLens10M, which is external data unavailable
offline. SynthLens is the documented substitution (DESIGN.md Section 4):
a synthetic ratings corpus with planted low-rank structure, user/item
biases, Gaussian noise, Zipfian item popularity, and MovieLens-like
per-user rating counts — preserving exactly the properties the paper's
experiments exercise (ALS-recoverable structure, skewed item access,
per-user observation streams).
"""

from repro.data.synthlens import SynthLensConfig, SynthLens, Rating, generate_synthlens
from repro.data.movielens import MovieLensCorpus, load_movielens
from repro.data.splits import (
    RatingsSplit,
    split_by_fraction,
    split_per_user,
    paper_protocol_split,
    PaperProtocolSplit,
)

__all__ = [
    "MovieLensCorpus",
    "load_movielens",
    "SynthLensConfig",
    "SynthLens",
    "Rating",
    "generate_synthlens",
    "RatingsSplit",
    "split_by_fraction",
    "split_per_user",
    "paper_protocol_split",
    "PaperProtocolSplit",
]

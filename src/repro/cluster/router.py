"""Request routing policies.

The paper's design routes each incoming request to the node owning that
user's weight partition, making all user-weight reads and writes local
and load-balancing both serving and online updates. The alternatives
here (random, round-robin) are the baselines the routing ablation
benchmark compares against.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import count

import numpy as np

from repro.common.errors import RoutingError
from repro.common.rng import as_generator
from repro.cluster.node import Node
from repro.cluster.partitioner import Partitioner


class Router(ABC):
    """Chooses the serving node for a request identified by uid."""

    def __init__(self, nodes: list[Node]):
        if not nodes:
            raise RoutingError("router requires at least one node")
        self.nodes = nodes
        #: the cluster's ReplicationManager when replication is enabled;
        #: routers that understand replica sets (user-aware routing)
        #: consult it to send a dead owner's requests to the node hosting
        #: the promoted follower instead of an arbitrary alive node.
        self.replication = None

    def attach_replication(self, replication) -> None:
        """Teach the router the cluster's replica placement."""
        self.replication = replication

    def replica_set(self, uid: int) -> list[int]:
        """``[primary, *followers]`` node ids for this uid's weights.

        Without replication the set is just the owner; with it, the
        shared user-namespace placement from the replication manager.
        """
        raise RoutingError(
            f"{type(self).__name__} does not track replica sets"
        )

    def _alive(self) -> list[Node]:
        alive = [n for n in self.nodes if n.alive]
        if not alive:
            raise RoutingError("no alive nodes to route to")
        return alive

    @abstractmethod
    def route(self, uid: int) -> Node:
        """The node that should serve this user's request."""

    def route_index(self, uid: int) -> int:
        """The node id this request routes to.

        Used by the serving engine to shard its request queues per node,
        so batches stay node-local and adaptive batching composes with
        user-aware routing (a batch never mixes users whose weight
        partitions live on different nodes). Stateful routers (round
        robin) advance their state like any other routing decision.
        """
        return self.route(uid).node_id


class UserAwareRouter(Router):
    """Route to the node owning the user's weight partition (the paper's
    policy). Falls over to the next alive node when the owner is down."""

    def __init__(self, nodes: list[Node], partitioner: Partitioner):
        super().__init__(nodes)
        if partitioner.num_partitions != len(nodes):
            raise RoutingError(
                f"partitioner has {partitioner.num_partitions} partitions "
                f"but the cluster has {len(nodes)} nodes"
            )
        self.partitioner = partitioner

    def replica_set(self, uid: int) -> list[int]:
        """``[primary, *followers]`` node ids for this uid's weights."""
        partition = self.partitioner.partition(uid)
        if self.replication is None:
            return [partition]
        return self.replication.user_replica_set(partition)

    def route(self, uid: int) -> Node:
        """The node that should serve this user's request.

        With replication attached, a dead owner's requests go to the
        node hosting the promoted follower for that user partition (the
        replica actually holding the shipped weights); otherwise they
        fall over to an arbitrary alive node as before.
        """
        partition = self.partitioner.partition(uid)
        owner = self.nodes[partition]
        if owner.alive:
            return owner
        if self.replication is not None:
            serving = self.replication.serving_node_for_user_partition(partition)
            if serving is not None and self.nodes[serving].alive:
                return self.nodes[serving]
        alive = self._alive()
        return alive[partition % len(alive)]


class RandomRouter(Router):
    """Uniform random routing — the locality-oblivious baseline."""

    def __init__(self, nodes: list[Node], rng: np.random.Generator | int | None = None):
        super().__init__(nodes)
        self._rng = as_generator(rng)

    def route(self, uid: int) -> Node:
        """The node that should serve this user's request."""
        alive = self._alive()
        return alive[int(self._rng.integers(len(alive)))]


class RoundRobinRouter(Router):
    """Cycle through alive nodes — even load, no locality."""

    def __init__(self, nodes: list[Node]):
        super().__init__(nodes)
        self._counter = count()

    def route(self, uid: int) -> Node:
        """The node that should serve this user's request."""
        alive = self._alive()
        return alive[next(self._counter) % len(alive)]

"""UDF byte-code inspection: static analysis of model UDFs.

Section 6: "We are investigating automatic ways of analyzing data
dependencies through techniques like UDF byte-code inspection." This
module implements that investigation for Python UDFs (feature functions,
retrain procedures): it walks a callable's byte code and closure to
report

* which globals and closure cells the UDF depends on (the "data
  dependencies" — e.g. a captured factor matrix that must ship with
  the job),
* suspicious patterns for an offline/retrain context: use of
  nondeterministic sources (``random``, ``time``), mutation opcodes on
  captured state, and I/O calls — any of which break the
  retrain-is-a-pure-function-of-the-log contract the manager relies on
  for reproducible model versions.

The checker is advisory (`check_retrain_udf` returns warnings, it does
not block): static analysis of Python is necessarily approximate, and
the paper frames this as an investigation, not an enforcement gate.
"""

from __future__ import annotations

import dis
from dataclasses import dataclass, field

from repro.common.errors import ValidationError

#: Module/global names whose use makes a retrain nondeterministic.
NONDETERMINISTIC_NAMES = {"random", "time", "uuid", "os", "secrets"}
#: Callable attribute names that read entropy or the clock.
NONDETERMINISTIC_ATTRS = {
    "random", "randint", "randn", "normal", "shuffle", "choice",
    "default_rng", "time", "perf_counter", "uuid4", "urandom",
}
#: Attribute names that look like I/O.
IO_ATTRS = {"open", "read", "write", "recv", "send", "urlopen", "get", "post"}
#: Opcodes that always mutate non-local state. ``STORE_DEREF`` /
#: ``DELETE_DEREF`` are handled separately: they only count when the
#: target is a *free* variable (captured from an enclosing scope) —
#: storing to the function's own cell variables (created because a
#: nested comprehension reads them) is ordinary local assignment.
MUTATION_OPCODES = {"STORE_GLOBAL", "DELETE_GLOBAL"}
DEREF_OPCODES = {"STORE_DEREF", "DELETE_DEREF"}


@dataclass
class UdfReport:
    """What one UDF depends on and which contract risks it carries."""

    name: str
    globals_read: list[str] = field(default_factory=list)
    closure_cells: dict[str, str] = field(default_factory=dict)  # name -> type
    attributes_used: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def is_pure_looking(self) -> bool:
        """No warnings were raised (approximate purity)."""
        return not self.warnings


def _code_objects(code) -> list:
    """A code object and all its nested code objects."""
    out = [code]
    for const in code.co_consts:
        if hasattr(const, "co_code"):  # nested function / comprehension
            out.extend(_code_objects(const))
    return out


def inspect_udf(fn) -> UdfReport:
    """Analyze a Python callable's data dependencies and risk patterns."""
    if not callable(fn):
        raise ValidationError(f"inspect_udf needs a callable, got {type(fn).__name__}")
    code = getattr(fn, "__code__", None)
    if code is None:
        # builtins / C extensions: nothing to inspect.
        return UdfReport(name=getattr(fn, "__name__", repr(fn)))

    report = UdfReport(name=fn.__name__)

    globals_read: set[str] = set()
    attributes: set[str] = set()
    for code_object in _code_objects(code):
        free_variables = set(code_object.co_freevars)
        for instruction in dis.get_instructions(code_object):
            if instruction.opname == "LOAD_GLOBAL":
                globals_read.add(str(instruction.argval))
            elif instruction.opname in ("LOAD_ATTR", "LOAD_METHOD"):
                attributes.add(str(instruction.argval))
            elif instruction.opname in MUTATION_OPCODES or (
                instruction.opname in DEREF_OPCODES
                and str(instruction.argval) in free_variables
            ):
                report.warnings.append(
                    f"mutates non-local state via {instruction.opname} "
                    f"({instruction.argval})"
                )
    report.globals_read = sorted(globals_read)
    report.attributes_used = sorted(attributes)

    # Closure cells: the captured data dependencies.
    free_names = code.co_freevars
    cells = getattr(fn, "__closure__", None) or ()
    for name, cell in zip(free_names, cells):
        try:
            value = cell.cell_contents
            report.closure_cells[name] = type(value).__name__
        except ValueError:  # empty cell
            report.closure_cells[name] = "<unbound>"

    # Risk patterns.
    for name in sorted(globals_read & NONDETERMINISTIC_NAMES):
        report.warnings.append(f"reads nondeterministic module {name!r}")
    for attr in sorted(attributes & NONDETERMINISTIC_ATTRS):
        report.warnings.append(f"calls nondeterministic attribute {attr!r}")
    for attr in sorted(attributes & IO_ATTRS):
        report.warnings.append(f"performs I/O-looking call {attr!r}")
    if "open" in globals_read:
        report.warnings.append("performs I/O-looking call 'open'")
    return report


def check_retrain_udf(fn) -> list[str]:
    """Warnings for using ``fn`` as an offline-retrain UDF.

    A retrain must be a deterministic function of (observations, current
    weights) for model versions to be reproducible and rollbacks
    meaningful. Returns the (possibly empty) list of warnings; callers
    decide whether to log or refuse.
    """
    report = inspect_udf(fn)
    warnings = list(report.warnings)
    for name, type_name in report.closure_cells.items():
        if type_name in ("dict", "list", "set"):
            warnings.append(
                f"captures mutable {type_name} {name!r} in its closure; "
                "mutations between retrains make versions irreproducible"
            )
    return warnings

"""Ablation: bandit topK vs greedy under a feedback loop.

Paper Section 5 ("Bandits and Multiple Models"): a greedy recommender
"that only plays the current Top40 songs will never receive feedback
from users indicating that other songs are preferable"; contextual
bandits escape the loop by recommending the item with the best
*potential* score. This ablation simulates that exact trap: every user's
truly-best items start with a pessimistic-looking model score, so pure
exploitation never tries them, while exploring policies discover them.

Protocol: the catalog contains hidden gems the deployed model rates
*below* everything else (the model has never seen feedback on them, and
its prior is wrong there — the paper's "New Potato Caboose" case). Item
features are one-hot, so only direct observation of an item can fix its
score: exactly the memorization regime where greedy's feedback loop is
inescapable. Each round, the policy picks top-1 from a random candidate
slate; the environment returns the planted rating as feedback (an online
update). We track cumulative regret against the slate-best item and the
fraction of the catalog each policy ever serves.

Shape assertions: LinUCB serves the hidden gems (higher catalog
coverage including the gem set) and ends with lower per-round regret in
the final quarter of the run, while greedy never escapes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Velox, VeloxConfig
from repro.core.bandits import (
    EpsilonGreedyPolicy,
    GreedyPolicy,
    LinUcbPolicy,
    ThompsonSamplingPolicy,
)
from repro.core.models import MatrixFactorizationModel

from conftest import write_result

NUM_ITEMS = 40
NUM_USERS = 8
NUM_GEMS = 8
ROUNDS = 1200
SLATE = 10


def make_environment(seed: int = 17):
    """One-hot item features, a misleading prior on the gem set.

    True ratings: gems are great (4.8), everything else mediocre (3.0).
    The deployed model predicts 3.8 for a decoy set, 3.2 for ordinary
    items, and 2.0 for the gems — so pure exploitation will cycle
    through decoys and ordinary items forever and never learn the truth
    about a gem.
    """
    rng = np.random.default_rng(seed)
    gems = set(rng.choice(NUM_ITEMS, NUM_GEMS, replace=False).tolist())
    decoys = set(
        rng.choice(
            [i for i in range(NUM_ITEMS) if i not in gems], NUM_GEMS, replace=False
        ).tolist()
    )

    def oracle(uid: int, item: int) -> float:
        base = 4.8 if item in gems else 3.0
        noise = float(np.random.default_rng((uid, item, seed)).normal(0, 0.1))
        return float(np.clip(base + noise, 0.5, 5.0))

    # One-hot item factors: observing item i only informs weight slot i.
    model = MatrixFactorizationModel(
        "bandit", np.eye(NUM_ITEMS), global_mean=3.0
    )
    prior_scores = np.full(NUM_ITEMS, 0.2)  # predicted 3.2
    for item in decoys:
        prior_scores[item] = 0.8  # predicted 3.8
    for item in gems:
        prior_scores[item] = -1.0  # predicted 2.0 — the trap
    weights = {
        uid: model.pack_user_weights(prior_scores.copy(), 0.0)
        for uid in range(NUM_USERS)
    }
    # Light regularization: the bandit's value comes from fast per-item
    # learning once an item is finally tried.
    velox = Velox.deploy(
        VeloxConfig(num_nodes=1, regularization=0.3), auto_retrain=False
    )
    velox.add_model(model, initial_user_weights=weights)
    return velox, oracle


def run_policy(policy, seed: int = 17) -> dict[str, float]:
    velox, oracle = make_environment(seed)
    rng = np.random.default_rng(seed + 1)
    served: set[int] = set()
    regrets: list[float] = []
    for round_index in range(ROUNDS):
        uid = int(rng.integers(NUM_USERS))
        slate = rng.choice(NUM_ITEMS, size=SLATE, replace=False)
        chosen = velox.top_k(None, uid, [int(i) for i in slate], k=1, policy=policy)
        item = int(chosen[0][0])
        served.add(item)
        reward = oracle(uid, item)
        best = max(oracle(uid, int(i)) for i in slate)
        regrets.append(best - reward)
        velox.observe(uid=uid, x=item, y=reward)
    tail = regrets[3 * ROUNDS // 4 :]
    return {
        "coverage": len(served) / NUM_ITEMS,
        "cumulative_regret": float(np.sum(regrets)),
        "tail_regret_per_round": float(np.mean(tail)),
    }


POLICIES = {
    "greedy": lambda: GreedyPolicy(),
    "epsilon_greedy": lambda: EpsilonGreedyPolicy(epsilon=0.1, rng=3),
    "linucb": lambda: LinUcbPolicy(alpha=2.0),
    "thompson": lambda: ThompsonSamplingPolicy(scale=1.5, rng=4),
}


@pytest.mark.parametrize("name", list(POLICIES))
def test_bandit_policy_run(benchmark, name):
    benchmark.pedantic(run_policy, args=(POLICIES[name](),), rounds=1, iterations=1)


def test_bandit_summary(benchmark):
    results = {name: run_policy(factory()) for name, factory in POLICIES.items()}
    lines = ["policy          coverage  cumulative_regret  tail_regret_per_round"]
    for name, row in results.items():
        lines.append(
            f"{name:<16}{row['coverage']:<10.3f}"
            f"{row['cumulative_regret']:<19.1f}{row['tail_regret_per_round']:.3f}"
        )
    write_result("ablation_bandits", lines)

    greedy = results["greedy"]
    linucb = results["linucb"]
    # Shape: exploration covers more of the catalog than exploitation
    # (greedy never serves the trapped gem set).
    assert linucb["coverage"] > greedy["coverage"]
    # Shape: having discovered the gems, LinUCB's late-run regret is
    # well below greedy's, and its whole-run regret is lower too.
    assert linucb["tail_regret_per_round"] < greedy["tail_regret_per_round"]
    assert linucb["cumulative_regret"] < greedy["cumulative_regret"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Stream sinks: where processed micro-batches land."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.common.errors import ValidationError


class Sink(ABC):
    """Consumes processed batches."""

    @abstractmethod
    def write(self, batch: list) -> None:
        """Consume one processed batch."""

    def close(self) -> None:
        """End-of-stream notification (default: nothing)."""


class CollectSink(Sink):
    """Accumulates every record in memory (tests, small jobs)."""

    def __init__(self):
        self.records: list = []
        self.closed = False

    def write(self, batch: list) -> None:
        """Consume one processed batch (see Sink.write)."""
        self.records.extend(batch)

    def close(self) -> None:
        """End-of-stream notification."""
        self.closed = True


class CallbackSink(Sink):
    """Invokes a callable per record."""

    def __init__(self, fn: Callable):
        self._fn = fn

    def write(self, batch: list) -> None:
        """Consume one processed batch (see Sink.write)."""
        for record in batch:
            self._fn(record)


class VeloxObserveSink(Sink):
    """Feeds labelled interaction records into a deployed Velox model.

    Records must be ``(uid, item, label)`` triples by the time they
    reach this sink (upstream operators do the shaping); each becomes
    one ``observe`` call, i.e. one durable log append plus one online
    weight update. This is the paper's Figure 1 loop closing: actions
    produce observations, observations retrain models.
    """

    def __init__(self, velox, model_name: str | None = None):
        self.velox = velox
        self.model_name = model_name
        self.observations_written = 0

    def write(self, batch: list) -> None:
        """Consume one processed batch (see Sink.write)."""
        for record in batch:
            try:
                uid, item, label = record
            except (TypeError, ValueError):
                raise ValidationError(
                    f"VeloxObserveSink needs (uid, item, label) records, "
                    f"got {record!r}"
                ) from None
            self.velox.observe(
                uid=int(uid), x=item, y=float(label), model_name=self.model_name
            )
            self.observations_written += 1

"""Driver-shared state for sparklite jobs: broadcasts and accumulators.

Spark programs ship large read-only values to tasks as *broadcast
variables* and aggregate side-channel statistics through *accumulators*;
the ALS driver uses both patterns (frozen factor matrices per
half-iteration; solver diagnostics). In-process these are thin wrappers,
but they make the intent explicit, catch use-after-unpersist bugs, and
keep job closures free of accidental mutable capture.
"""

from __future__ import annotations

from threading import RLock

from repro.common.errors import BatchExecutionError


class Broadcast:
    """A read-only value shared with every task.

    ``unpersist()`` releases the value; any later access raises, which
    surfaces the classic use-after-free of broadcast handles eagerly.
    """

    _MISSING = object()

    def __init__(self, broadcast_id: int, value: object):
        self.broadcast_id = broadcast_id
        self._value = value

    @property
    def value(self) -> object:
        """The broadcast value / current accumulator total."""
        if self._value is Broadcast._MISSING:
            raise BatchExecutionError(
                f"broadcast {self.broadcast_id} was unpersisted"
            )
        return self._value

    def unpersist(self) -> None:
        """Release the value; later access raises."""
        self._value = Broadcast._MISSING


class Accumulator:
    """A write-only-from-tasks, read-from-driver counter.

    Tasks call ``add``; only the driver should read ``value``. Additions
    are serialized, so accumulators are safe under the threaded
    scheduler. ``merge_fn`` defaults to ``+`` (sums), but any
    associative, commutative function works.
    """

    def __init__(self, accumulator_id: int, zero, merge_fn=None):
        self.accumulator_id = accumulator_id
        self._value = zero
        self._merge = merge_fn if merge_fn is not None else (lambda a, b: a + b)
        self._lock = RLock()

    def add(self, amount) -> None:
        """Merge one contribution (called from tasks)."""
        with self._lock:
            self._value = self._merge(self._value, amount)

    @property
    def value(self):
        """The broadcast value / current accumulator total."""
        with self._lock:
            return self._value

"""The analytics query model: filter, group-by, aggregate over the log.

One :class:`AnalyticsQuery` describes a dashboard/report question about
the observation stream — "mean label for user 7", "observations per
item", "label revenue in time window [200, 400)" — small enough for a
cost-based planner to reason about exactly, yet covering the rollup
shapes real reporting traffic runs against a serving store.

Semantics: a query selects observations matching every set filter
(``uid``, ``item_id``, timestamp in ``[time_start, time_end)``), then
either aggregates them into one scalar (``group_by=None``) or into one
scalar per group key (``group_by`` of ``"uid"``, ``"item"``, or
``"window"``, the tumbling time bucket). The aggregate runs over the
observation ``label``: ``count``, ``sum``, or ``mean``. The mean of an
empty selection is ``None`` (count 0, sum 0.0), on every execution path,
so materialized answers and log scans stay comparable bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError

#: Supported aggregates over the observation label.
AGGREGATES = ("count", "sum", "mean")
#: Supported grouping dimensions (``"window"`` = tumbling time bucket).
GROUP_DIMENSIONS = ("uid", "item", "window")


@dataclass(frozen=True)
class AnalyticsQuery:
    """One filter/group-by/aggregate question over an observation log.

    Attributes:
        uid: Restrict to this user's observations (None = all users).
        item_id: Restrict to this item's observations (None = all items).
        time_start: Inclusive lower timestamp bound (None = open).
        time_end: Exclusive upper timestamp bound (None = open).
        group_by: ``None`` for one scalar, or one of
            :data:`GROUP_DIMENSIONS` for a per-key breakdown.
        agg: One of :data:`AGGREGATES`, computed over ``label``.
    """

    uid: int | None = None
    item_id: int | None = None
    time_start: float | None = None
    time_end: float | None = None
    group_by: str | None = None
    agg: str = "count"

    def __post_init__(self) -> None:
        if self.agg not in AGGREGATES:
            raise ValidationError(
                f"agg must be one of {AGGREGATES}, got {self.agg!r}"
            )
        if self.group_by is not None and self.group_by not in GROUP_DIMENSIONS:
            raise ValidationError(
                f"group_by must be one of {GROUP_DIMENSIONS} or None, "
                f"got {self.group_by!r}"
            )
        if self.group_by == "uid" and self.uid is not None:
            raise ValidationError("cannot group by uid while filtering on uid")
        if self.group_by == "item" and self.item_id is not None:
            raise ValidationError(
                "cannot group by item while filtering on item_id"
            )
        if (
            self.time_start is not None
            and self.time_end is not None
            and self.time_end < self.time_start
        ):
            raise ValidationError(
                f"time_end {self.time_end} precedes time_start {self.time_start}"
            )

    @property
    def time_filtered(self) -> bool:
        """Whether either timestamp bound is set."""
        return self.time_start is not None or self.time_end is not None

    def matches(self, observation) -> bool:
        """Whether one observation passes every set filter (the scan
        path's predicate; materialized paths must agree with it)."""
        if self.uid is not None and observation.uid != self.uid:
            return False
        if self.item_id is not None and observation.item_id != self.item_id:
            return False
        if self.time_start is not None and observation.timestamp < self.time_start:
            return False
        if self.time_end is not None and observation.timestamp >= self.time_end:
            return False
        return True


def finalize(agg: str, count: int, total: float):
    """One (count, sum) accumulator -> the query's aggregate value."""
    if agg == "count":
        return count
    if agg == "sum":
        return total
    return total / count if count else None


@dataclass(frozen=True)
class AnalyticsResult:
    """One executed query: the answer plus plan provenance.

    ``value`` holds the scalar for ungrouped queries; ``groups`` holds
    the per-key breakdown for grouped ones (exactly one of the two is
    meaningful, per ``query.group_by``). ``plan`` records how the answer
    was produced — which route won, what the candidates cost, and how
    many records the materialized answer lagged the live log by.
    """

    query: AnalyticsQuery
    value: object = None
    groups: dict = field(default_factory=dict)
    plan: object = None

    def payload(self) -> dict:
        """The wire-facing dict (group keys stringified for JSON)."""
        body: dict = {"agg": self.query.agg}
        if self.query.group_by is None:
            body["value"] = self.value
        else:
            body["group_by"] = self.query.group_by
            body["groups"] = {str(key): val for key, val in self.groups.items()}
        if self.plan is not None:
            body["plan"] = self.plan.payload()
        return body

"""Deterministic random-number plumbing.

Every stochastic component accepts either a seed or a ready-made
``numpy.random.Generator``. :func:`as_generator` normalizes the two, and
:func:`spawn_generators` derives independent child streams so parallel
tasks do not share state.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 0x5EED


def as_generator(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``Generator`` for a seed, an existing generator, or ``None``.

    ``None`` maps to a fixed library-wide default seed (not OS entropy) so
    that "I forgot to pass a seed" still yields reproducible runs.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if seed_or_rng is None:
        return np.random.default_rng(DEFAULT_SEED)
    return np.random.default_rng(seed_or_rng)


def spawn_generators(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]


def stable_hash(value: object) -> int:
    """A process-stable 64-bit hash for partitioning.

    Python's built-in ``hash`` is randomized per process for ``str`` and
    ``bytes``, which would make partition maps non-deterministic across
    runs. This uses blake2b over the repr, which is stable for the key
    types the store supports (ints, strings, tuples thereof).
    """
    digest = hashlib.blake2b(repr(value).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")

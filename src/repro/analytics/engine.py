"""The analytics tier for one node: catalogs, planner, metering.

:class:`AnalyticsEngine` subscribes to its store's log-creation hook,
so every observation log — including per-model logs created after the
engine — gets an :class:`~repro.analytics.catalog.MVCatalog` the moment
it exists, backfilled atomically from whatever the log already holds.
``query`` plans and runs one :class:`AnalyticsQuery` against a named
log, meters the outcome, and returns the answer with its plan
provenance; ``integrity`` replays catalogs against their logs on
demand. ``describe`` is the status-endpoint payload.

This is the serving-store analogue of the paper's "low latency,
scalable model management" pitch applied to reporting traffic: the
same store that serves predictions answers dashboard rollups from
inline-maintained MVs instead of handing every question a full log
scan.
"""

from __future__ import annotations

import time

from repro.analytics.catalog import DEFAULT_WINDOW_WIDTH, MVCatalog
from repro.analytics.integrity import IntegrityChecker, IntegrityReport
from repro.analytics.planner import CostBasedPlanner
from repro.analytics.query import AnalyticsQuery, AnalyticsResult
from repro.common.errors import StorageError
from repro.metrics.analytics import AnalyticsMetrics


class AnalyticsEngine:
    """Materialized-view analytics over every observation log of a store."""

    def __init__(
        self,
        store,
        window_width: int = DEFAULT_WINDOW_WIDTH,
        metrics: AnalyticsMetrics | None = None,
    ):
        self.store = store
        self.window_width = int(window_width)
        self.metrics = metrics if metrics is not None else AnalyticsMetrics()
        self._catalogs: dict[str, MVCatalog] = {}
        self._planners: dict[str, CostBasedPlanner] = {}
        # Future logs arrive via the hook; logs that already exist (an
        # engine enabled on a warm store) are attached here, each one
        # backfilled through replay-on-register.
        store.add_log_listener(self._attach)
        for name in store.log_names():
            self._attach(name, store.log(name))

    def _attach(self, name: str, log) -> None:
        catalog = MVCatalog(
            name, log, window_width=self.window_width, metrics=self.metrics
        )
        self._catalogs[name] = catalog
        self._planners[name] = CostBasedPlanner(catalog)

    # -- lookup ---------------------------------------------------------------

    def catalog(self, log_name: str) -> MVCatalog:
        """The MV catalog for one observation log."""
        try:
            return self._catalogs[log_name]
        except KeyError:
            raise StorageError(
                f"no analytics catalog for log {log_name!r}"
            ) from None

    def catalog_names(self) -> list[str]:
        """Sorted names of all logs with catalogs."""
        return sorted(self._catalogs)

    # -- querying -------------------------------------------------------------

    def query(
        self, log_name: str, query: AnalyticsQuery, force_scan: bool = False
    ) -> AnalyticsResult:
        """Plan, execute, and meter one query against one log."""
        planner = self._planners.get(log_name)
        if planner is None:
            raise StorageError(f"no analytics catalog for log {log_name!r}")
        started = time.perf_counter()
        result = planner.execute(query, force_scan=force_scan)
        self.metrics.record_query(
            result.plan.route,
            time.perf_counter() - started,
            staleness_records=result.plan.staleness_records,
        )
        return result

    # -- integrity ------------------------------------------------------------

    def integrity(
        self, log_name: str, tolerance: float = 0.0
    ) -> IntegrityReport:
        """Replay one catalog's views against its log and meter the verdict."""
        report = IntegrityChecker(self.catalog(log_name)).check(
            tolerance=tolerance
        )
        self.metrics.record_integrity(report.ok)
        return report

    def integrity_all(self, tolerance: float = 0.0) -> dict[str, IntegrityReport]:
        """Integrity reports for every catalog, keyed by log name."""
        return {
            name: self.integrity(name, tolerance=tolerance)
            for name in self.catalog_names()
        }

    # -- export ---------------------------------------------------------------

    def describe(self) -> dict:
        """Status-endpoint payload: counters plus per-catalog summaries."""
        return {
            "window_width": self.window_width,
            "metrics": self.metrics.snapshot(),
            "catalogs": {
                name: catalog.describe()
                for name, catalog in sorted(self._catalogs.items())
            },
        }

"""Partition: versioned mutations, failure, snapshot + journal recovery."""

import pytest

from repro.common.errors import PartitionError
from repro.store import Partition


class TestMutations:
    def test_put_returns_incrementing_versions(self):
        part = Partition(0)
        assert part.put("k", "v1") == 1
        assert part.put("k", "v2") == 2

    def test_get_returns_value_and_version(self):
        part = Partition(0)
        part.put("k", "v")
        assert part.get("k") == ("v", 1)

    def test_get_absent_returns_none(self):
        assert Partition(0).get("k") is None

    def test_delete_and_reinsert_restarts_version(self):
        part = Partition(0)
        part.put("k", "v")
        assert part.delete("k") is True
        assert part.put("k", "v2") == 1

    def test_delete_absent_returns_false(self):
        assert Partition(0).delete("k") is False

    def test_truncate_clears(self):
        part = Partition(0)
        for i in range(3):
            part.put(i, i)
        part.truncate()
        assert len(part) == 0

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Partition(-1)


class TestFailureAndRecovery:
    def test_failed_partition_rejects_access(self):
        part = Partition(0)
        part.put("k", "v")
        part.fail()
        with pytest.raises(PartitionError):
            part.get("k")
        with pytest.raises(PartitionError):
            part.put("k", "v2")

    def test_recover_replays_journal_from_scratch(self):
        part = Partition(0)
        part.put("a", 1)
        part.put("b", 2)
        part.delete("a")
        part.put("b", 3)
        part.fail()
        replayed = part.recover()
        assert replayed == 4
        assert part.get("a") is None
        assert part.get("b") == (3, 2)

    def test_recover_with_snapshot_replays_suffix_only(self):
        part = Partition(0)
        for i in range(10):
            part.put(i, i)
        part.snapshot()
        part.put("post", 1)
        part.fail()
        replayed = part.recover()
        assert replayed == 1  # only the post-snapshot record
        assert part.get(5) == (5, 1)
        assert part.get("post") == (1, 1)

    def test_recover_preserves_versions(self):
        part = Partition(0)
        part.put("k", "v1")
        part.put("k", "v2")
        part.fail()
        part.recover()
        assert part.get("k") == ("v2", 2)
        assert part.put("k", "v3") == 3

    def test_recover_after_truncate(self):
        part = Partition(0)
        part.put("a", 1)
        part.truncate()
        part.put("b", 2)
        part.fail()
        part.recover()
        assert part.get("a") is None
        assert part.get("b") == (2, 1)

    def test_recover_healthy_partition_is_idempotent(self):
        part = Partition(0)
        part.put("a", 1)
        part.recover()
        assert part.get("a") == (1, 1)

    def test_snapshot_compacts_journal(self):
        part = Partition(0)
        for i in range(5):
            part.put(i, i)
        before = part.journal_length
        part.snapshot()
        part.put("x", 1)
        part.fail()
        part.recover()
        assert len(part) == 6
        assert part.journal_length == before + 1


class _RecordingDelegate:
    """Minimal failover delegate: a dict with the partition's surface."""

    def __init__(self):
        self.data = {}
        self.calls = []

    def get(self, key):
        self.calls.append(("get", key))
        return self.data.get(key)

    def put(self, key, value):
        self.calls.append(("put", key))
        entry = self.data.get(key)
        version = 1 if entry is None else entry[1] + 1
        self.data[key] = (value, version)
        return version

    def delete(self, key):
        self.calls.append(("delete", key))
        return self.data.pop(key, None) is not None

    def keys(self):
        return iter(list(self.data.keys()))

    def items(self):
        return iter([(k, v) for k, (v, _) in self.data.items()])

    def __contains__(self, key):
        return key in self.data

    def __len__(self):
        return len(self.data)


class TestFailoverDelegate:
    def test_delegate_only_consulted_while_failed(self):
        part = Partition(0)
        delegate = _RecordingDelegate()
        part.failover = delegate
        part.put("k", "healthy")
        assert part.get("k") == ("healthy", 1)
        assert delegate.calls == []  # healthy partition never delegates

    def test_failed_partition_routes_through_delegate(self):
        part = Partition(0)
        delegate = _RecordingDelegate()
        delegate.data["k"] = ("replica-copy", 1)
        part.put("k", "original")
        part.fail()
        part.failover = delegate
        assert part.get("k") == ("replica-copy", 1)
        assert part.put("x", 1) == 1
        assert "x" in part and len(part) == 2
        assert part.delete("x") is True
        assert [c[0] for c in delegate.calls] == ["get", "put", "delete"]

    def test_failed_without_delegate_still_raises(self):
        part = Partition(0)
        part.put("k", 1)
        part.fail()
        with pytest.raises(PartitionError):
            part.get("k")

    def test_clearing_delegate_restores_failed_errors(self):
        part = Partition(0)
        part.fail()
        part.failover = _RecordingDelegate()
        part.get("k")  # fine: delegated
        part.failover = None
        with pytest.raises(PartitionError):
            part.get("k")

    def test_on_mutate_fires_per_journaled_write(self):
        part = Partition(0)
        seen = []
        part.on_mutate = lambda p: seen.append(p.journal.next_sequence)
        part.put("a", 1)
        part.delete("a")
        part.truncate()
        assert seen == [1, 2, 3]

    def test_on_mutate_not_fired_for_reads(self):
        part = Partition(0)
        part.put("a", 1)
        seen = []
        part.on_mutate = lambda p: seen.append(1)
        part.get("a")
        assert seen == []


class TestExportState:
    def test_export_matches_live_state(self):
        part = Partition(0)
        part.put("a", 1)
        part.put("a", 2)
        part.put("b", 3)
        state, sequence = part.export_state()
        assert state == {"a": (2, 2), "b": (3, 1)}
        assert sequence == part.journal.next_sequence

    def test_export_is_a_copy(self):
        part = Partition(0)
        part.put("a", [1, 2])
        state, _ = part.export_state()
        state["a"][0][0] = 99
        assert part.get("a") == ([1, 2], 1)

    def test_export_while_failed_rebuilds_from_durable_state(self):
        """Snapshot transfer must work even though the primary's memory
        is gone — the journal + snapshot are the durable tier."""
        part = Partition(0)
        for i in range(5):
            part.put(i, i)
        part.snapshot()
        part.put("post", 1)
        part.fail()
        state, sequence = part.export_state()
        assert state[3] == (3, 1)
        assert state["post"] == (1, 1)
        assert sequence == part.journal.next_sequence
        assert part.failed  # exporting does not revive the partition

"""The Velox deployment facade.

Wires the whole architecture of Figure 2 — cluster, storage, batch
context, model manager, prediction service — behind the three-method
front-end API of Listing 1::

    velox = Velox.deploy(VeloxConfig(num_nodes=4))
    velox.add_model(model, initial_user_weights=weights)
    item, score = velox.predict("songs", uid=7, x=42)
    best = velox.top_k("songs", uid=7, xs=[1, 2, 3], k=2)
    velox.observe(uid=7, x=42, y=4.5, model_name="songs")
"""

from __future__ import annotations

import numpy as np

from repro.common.config import VeloxConfig
from repro.batch import BatchContext
from repro.cluster import VeloxCluster, NetworkModel
from repro.core.bandits import BanditPolicy
from repro.core.manager import ModelManager, ObserveResult, RetrainEvent
from repro.core.model import ModelRegistry, VeloxModel
from repro.core.prediction import PredictionService, PredictionResult


class Velox:
    """One deployed Velox instance: manager + predictor over a cluster."""

    def __init__(
        self,
        config: VeloxConfig,
        cluster: VeloxCluster,
        batch_context: BatchContext,
        auto_retrain: bool = True,
    ):
        self.config = config
        self.cluster = cluster
        self.batch_context = batch_context
        self.registry = ModelRegistry()
        self.manager = ModelManager(
            registry=self.registry,
            cluster=cluster,
            service=None,  # set right below; manager & service are co-dependent
            batch_context=batch_context,
            config=config,
            auto_retrain=auto_retrain,
        )
        self.service = PredictionService(
            registry=self.registry,
            cluster=cluster,
            user_state_table_for=self.manager.user_state_table,
            config=config,
            bootstrap_lookup=self.manager.averagers.get,
        )
        self.manager.service = self.service
        # The analytics tier attaches its log listener before any model
        # deploys, so every per-model observation log gets an MV catalog
        # the moment add_model creates it.
        self.analytics = None
        if config.analytics:
            from repro.analytics import AnalyticsEngine

            self.analytics = AnalyticsEngine(
                cluster.store,
                window_width=int(config.extra.get("analytics_window", 100)),
            )
        self._default_model: str | None = None

    @classmethod
    def deploy(
        cls,
        config: VeloxConfig | None = None,
        router_factory=None,
        batch_parallelism: int | None = None,
        auto_retrain: bool = True,
    ) -> "Velox":
        """Stand up a simulated deployment from a config."""
        cfg = config if config is not None else VeloxConfig()
        network = NetworkModel(
            hop_latency=cfg.remote_hop_latency, bandwidth=cfg.remote_bandwidth
        )
        cluster = VeloxCluster(
            num_nodes=cfg.num_nodes, router_factory=router_factory, network=network
        )
        if cfg.replication_factor > 1:
            from repro.replication import ReplicationManager

            extra = cfg.extra
            replication = ReplicationManager(
                cluster,
                replication_factor=cfg.replication_factor,
                virtual_nodes=int(extra.get("replication_virtual_nodes", 64)),
                max_lag_records=int(extra.get("replication_max_lag_records", 128)),
                heartbeat_interval=float(
                    extra.get("replication_heartbeat_interval", 0.02)
                ),
                heartbeat_timeout=float(
                    extra.get("replication_heartbeat_timeout", 0.1)
                ),
            )
            # Attach before any model deploys so every user-state table
            # created later gets replica sets via the store listener.
            cluster.attach_replication(replication)
            replication.start()
        batch_context = BatchContext(
            default_parallelism=batch_parallelism or cfg.num_nodes,
            executor=cfg.batch_executor,
        )
        return cls(cfg, cluster, batch_context, auto_retrain=auto_retrain)

    # -- model deployment -------------------------------------------------------

    def add_model(
        self,
        model: VeloxModel,
        initial_user_weights: dict[int, np.ndarray] | None = None,
        seed_observations: list | None = None,
    ) -> None:
        """Deploy a model; the first deployed model becomes the default.

        ``seed_observations`` loads historical training data into the
        observation log so future retrains see the full corpus.
        """
        self.manager.add_model(
            model, initial_user_weights, seed_observations=seed_observations
        )
        if self._default_model is None:
            self._default_model = model.name

    def model(self, name: str | None = None) -> VeloxModel:
        """The currently serving model object (default model if unnamed)."""
        return self.registry.get(self._model_name(name))

    # -- the Listing 1 API ----------------------------------------------------------

    def predict(
        self, model_name: str | None, uid: int, x: object
    ) -> tuple[object, float]:
        """Point prediction: returns ``(item, score)`` as in Listing 1."""
        result = self.predict_detailed(model_name, uid, x)
        return result.item, result.score

    def predict_detailed(
        self, model_name: str | None, uid: int, x: object
    ) -> PredictionResult:
        """Point prediction with serving provenance (cache hits, node)."""
        return self.service.predict(self._model_name(model_name), uid, x)

    def top_k(
        self,
        model_name: str | None,
        uid: int,
        xs: list,
        k: int = 1,
        policy: BanditPolicy | None = None,
        item_filter=None,
    ) -> list[tuple[object, float]]:
        """Best-k of the candidate items, optionally bandit-ranked and
        pre-filtered by an application-level policy."""
        results = self.service.top_k(
            self._model_name(model_name),
            uid,
            xs,
            k=k,
            policy=policy,
            item_filter=item_filter,
        )
        return [(r.item, r.score) for r in results]

    def top_k_catalog(
        self, model_name: str | None, uid: int, k: int = 10
    ) -> list[tuple[object, float]]:
        """Exact best-k over the model's whole catalog via the indexed
        top-K engine (Section 8's efficient top-K)."""
        results = self.service.top_k_catalog(self._model_name(model_name), uid, k=k)
        return [(r.item, r.score) for r in results]

    def observe(
        self,
        uid: int,
        x: object,
        y: float,
        model_name: str | None = None,
        validation: bool = False,
    ) -> ObserveResult:
        """Feedback ingestion: online update + quality tracking."""
        return self.manager.observe(
            self._model_name(model_name), uid, x, y, validation=validation
        )

    # -- lifecycle passthroughs --------------------------------------------------------

    def retrain(self, model_name: str | None = None, reason: str = "manual") -> RetrainEvent:
        """Synchronous offline retrain; returns the RetrainEvent."""
        return self.manager.retrain_now(self._model_name(model_name), reason=reason)

    def retrain_async(self, model_name: str | None = None, reason: str = "background"):
        """Kick off a background retrain; serving continues. Returns a
        :class:`~repro.core.manager.RetrainHandle` (``wait()`` for the
        event)."""
        return self.manager.retrain_async(self._model_name(model_name), reason=reason)

    def rollback(self, version: int, model_name: str | None = None) -> VeloxModel:
        """Revive a historical version as a new forward version."""
        return self.manager.rollback(self._model_name(model_name), version)

    def health(self, model_name: str | None = None):
        """The model's live health tracker."""
        return self.manager.health_report(self._model_name(model_name))

    # -- analytics ----------------------------------------------------------------------

    def analytics_query(
        self, query, model_name: str | None = None, force_scan: bool = False
    ):
        """Run one :class:`~repro.analytics.AnalyticsQuery` against a
        model's observation log; returns an
        :class:`~repro.analytics.AnalyticsResult` carrying its plan.

        ``force_scan=True`` bypasses the materialized views (the audit /
        ablation path). Raises :class:`~repro.common.errors.ConfigError`
        when the deployment was configured with ``analytics=False``.
        """
        return self._analytics_engine().query(
            self._analytics_log_name(model_name), query, force_scan=force_scan
        )

    def analytics_integrity(
        self, model_name: str | None = None, tolerance: float = 0.0
    ):
        """Replay a model's MV catalog against its log; returns an
        :class:`~repro.analytics.IntegrityReport`."""
        return self._analytics_engine().integrity(
            self._analytics_log_name(model_name), tolerance=tolerance
        )

    def _analytics_engine(self):
        if self.analytics is None:
            from repro.common.errors import ConfigError

            raise ConfigError(
                "analytics is disabled for this deployment "
                "(VeloxConfig.analytics=False)"
            )
        return self.analytics

    def _analytics_log_name(self, model_name: str | None) -> str:
        return self.manager._log_name(self._model_name(model_name))

    # -- replication ---------------------------------------------------------------------

    @property
    def replication(self):
        """The cluster's :class:`~repro.replication.ReplicationManager`
        (None when ``replication_factor == 1``)."""
        return self.cluster.replication

    def shutdown(self) -> None:
        """Stop background machinery (the replication heartbeat loop).

        Idempotent; deployments without replication have nothing to stop.
        """
        if self.cluster.replication is not None:
            self.cluster.replication.stop()

    # -- serving under load -------------------------------------------------------------

    def serving_engine(self, config=None, clock=None):
        """A :class:`~repro.serving.ServingEngine` over this deployment.

        The engine adds request queues, adaptive batching, and load
        shedding in front of the prediction service; call ``start()``
        (or use it as a context manager) before submitting::

            with velox.serving_engine(ServingConfig(num_workers=4)) as eng:
                result = eng.predict(uid=7, x=42)
        """
        from repro.serving import ServingEngine

        return ServingEngine(self, config=config, clock=clock)

    # -- persistence --------------------------------------------------------------------

    def save(self, directory) -> "Path":
        """Persist the whole deployment (store, models, config) to disk."""
        from repro.core.deployment_io import save_deployment

        return save_deployment(self, directory)

    @classmethod
    def load(cls, directory) -> "Velox":
        """Rebuild a deployment saved with :meth:`save`."""
        from repro.core.deployment_io import load_deployment

        return load_deployment(directory)

    # -- helpers -----------------------------------------------------------------------

    def _model_name(self, name: str | None) -> str:
        if name is not None:
            return name
        if self._default_model is None:
            from repro.common.errors import ModelNotFoundError

            raise ModelNotFoundError("<default>")
        return self._default_model

"""Shadow evaluation: paired comparison and promotion gating."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.core.shadow import ShadowEvaluator
from tests.conftest import make_mf_model


def better_candidate(velox, small_lens):
    """A candidate whose item factors are the *planted truth* — strictly
    better than anything trained from data."""
    from repro.core.models import MatrixFactorizationModel

    lens = small_lens
    model = MatrixFactorizationModel(
        "songs",
        lens.true_item_factors,
        lens.true_item_bias,
        lens.config.global_mean,
        version=5,
    )
    weights = {
        uid: model.pack_user_weights(
            lens.true_user_factors[uid], float(lens.true_user_bias[uid])
        )
        for uid in range(lens.num_users)
    }
    return model, weights


def worse_candidate(velox):
    """A candidate with random factors — strictly worse."""
    from repro.core.models import MatrixFactorizationModel

    current = velox.model()
    rng = np.random.default_rng(0)
    model = MatrixFactorizationModel(
        "songs",
        rng.normal(0, 1.0, current.item_factors.shape),
        global_mean=current.global_mean,
    )
    return model


class TestPairedEvaluation:
    def test_better_candidate_wins(self, deployed_velox, small_lens, small_split):
        candidate, weights = better_candidate(deployed_velox, small_lens)
        shadow = ShadowEvaluator(
            deployed_velox, "songs", candidate, weights, min_observations=50
        )
        for r in small_split.holdout[:200]:
            shadow.observe_pair(r.uid, r.item_id, r.rating)
        report = shadow.report()
        assert report.candidate_mean_loss < report.serving_mean_loss
        assert report.candidate_wins
        assert shadow.should_promote()

    def test_worse_candidate_loses(self, deployed_velox, small_split):
        candidate = worse_candidate(deployed_velox)
        shadow = ShadowEvaluator(
            deployed_velox, "songs", candidate, min_observations=50
        )
        for r in small_split.holdout[:200]:
            shadow.observe_pair(r.uid, r.item_id, r.rating)
        report = shadow.report()
        assert report.candidate_mean_loss > report.serving_mean_loss
        assert not report.candidate_wins
        assert not shadow.should_promote()

    def test_identical_candidate_is_not_significant(self, deployed_velox, small_split):
        current = deployed_velox.model()
        shadow = ShadowEvaluator(
            deployed_velox, "songs", current, min_observations=10
        )
        for r in small_split.holdout[:60]:
            shadow.observe_pair(r.uid, r.item_id, r.rating)
        report = shadow.report()
        assert report.mean_difference == pytest.approx(0.0)
        assert not report.significant

    def test_no_verdict_before_min_observations(
        self, deployed_velox, small_lens, small_split
    ):
        candidate, weights = better_candidate(deployed_velox, small_lens)
        shadow = ShadowEvaluator(
            deployed_velox, "songs", candidate, weights, min_observations=500
        )
        for r in small_split.holdout[:40]:
            shadow.observe_pair(r.uid, r.item_id, r.rating)
        assert not shadow.should_promote()

    def test_report_needs_two_pairs(self, deployed_velox, small_lens):
        candidate, weights = better_candidate(deployed_velox, small_lens)
        shadow = ShadowEvaluator(deployed_velox, "songs", candidate, weights)
        with pytest.raises(ValidationError):
            shadow.report()


class TestPromotion:
    def test_promote_publishes_and_serves_candidate(
        self, deployed_velox, small_lens, small_split
    ):
        candidate, weights = better_candidate(deployed_velox, small_lens)
        shadow = ShadowEvaluator(
            deployed_velox, "songs", candidate, weights, min_observations=50
        )
        for r in small_split.holdout[:150]:
            shadow.observe_pair(r.uid, r.item_id, r.rating)
        promoted = shadow.promote()
        assert deployed_velox.model() is promoted
        assert promoted.version > 0
        # serving now uses the truth factors: near-oracle predictions
        sample = small_split.holdout[0]
        __, score = deployed_velox.predict(None, sample.uid, sample.item_id)
        assert abs(score - small_lens.true_score(sample.uid, sample.item_id)) < 0.6

    def test_promote_refused_without_a_win(self, deployed_velox, small_split):
        candidate = worse_candidate(deployed_velox)
        shadow = ShadowEvaluator(
            deployed_velox, "songs", candidate, min_observations=20
        )
        for r in small_split.holdout[:60]:
            shadow.observe_pair(r.uid, r.item_id, r.rating)
        with pytest.raises(ValidationError):
            shadow.promote()
        assert deployed_velox.model().version == 0  # untouched

    def test_shadowing_never_affects_serving(self, deployed_velox, small_split):
        before = {
            (r.uid, r.item_id): deployed_velox.predict(None, r.uid, r.item_id)[1]
            for r in small_split.holdout[:20]
        }
        candidate = worse_candidate(deployed_velox)
        shadow = ShadowEvaluator(deployed_velox, "songs", candidate)
        for r in small_split.holdout[:100]:
            shadow.observe_pair(r.uid, r.item_id, r.rating)
        for (uid, item), score in before.items():
            assert deployed_velox.predict(None, uid, item)[1] == pytest.approx(score)

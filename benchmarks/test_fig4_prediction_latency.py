"""Figure 4: topK prediction latency vs itemset size and model complexity.

Paper: "Single-node topK prediction latency for both cached and
non-cached predictions for the MovieLens 10M rating dataset, varying
size of input set and dimension (d, or, factor). Results are averaged
over 10,000 trials." The series are d = 2000, 5000, 10000 factors plus
a 100%-hit prediction-cache configuration.

Shape assertions:
* latency grows ~linearly with itemset size for each d,
* the slope grows with d (bigger models cost more per item),
* the warm prediction cache is flat and cheapest — the benefit of
  caching grows with model size.
"""

from __future__ import annotations

import pytest

import numpy as np

from repro.metrics import LatencyRecorder
from repro.workloads import ZipfItemSampler

from conftest import build_mf_serving, write_result

NUM_ITEMS = 1200
ITEMSET_SIZES = [100, 250, 500, 1000]
DIMENSIONS = [2000, 5000, 10000]
CACHE_DIMENSION = 10000  # the cache series uses the biggest model


def make_itemsets(size: int, count: int, seed: int = 4) -> list[list[int]]:
    sampler = ZipfItemSampler(NUM_ITEMS, 0.0, rng=seed)
    return [sampler.sample_distinct(size) for __ in range(count)]


def build_uncached(dimension: int):
    """No prediction or feature caching: every item pays feature
    materialization plus the d-dimensional dot product."""
    return build_mf_serving(
        dimension,
        NUM_ITEMS,
        num_users=16,
        prediction_cache_capacity=0,
        feature_cache_capacity=0,
    )


def build_cached(dimension: int, itemset: list[int], uid: int):
    """Prediction cache pre-warmed to a 100% hit rate on ``itemset``."""
    velox = build_mf_serving(dimension, NUM_ITEMS, num_users=16)
    velox.top_k(None, uid, itemset, k=1)  # warm pass
    return velox


@pytest.mark.benchmark(max_time=1.0, min_rounds=3)
@pytest.mark.parametrize("itemset_size", ITEMSET_SIZES)
@pytest.mark.parametrize("dimension", DIMENSIONS)
def test_fig4_topk_uncached(benchmark, dimension, itemset_size):
    velox = build_uncached(dimension)
    itemset = make_itemsets(itemset_size, 1)[0]
    benchmark(velox.top_k, None, 3, itemset, 1)


@pytest.mark.benchmark(max_time=1.0, min_rounds=3)
@pytest.mark.parametrize("itemset_size", ITEMSET_SIZES)
def test_fig4_topk_cached(benchmark, itemset_size):
    itemset = make_itemsets(itemset_size, 1)[0]
    velox = build_cached(CACHE_DIMENSION, itemset, uid=3)
    benchmark(velox.top_k, None, 3, itemset, 1)


def test_fig4_summary(benchmark):
    """Regenerate the figure's four series and assert their shape.

    Latency per point is the *median* over trials with the garbage
    collector paused: GC pauses and allocator churn from earlier tests
    otherwise add noise comparable to the per-item dot-product cost and
    flatten the dimension series.
    """
    import gc

    trials = 9
    series: dict[object, dict[int, float]] = {}

    def measure(run) -> float:
        gc.collect()
        gc.disable()
        try:
            recorder = LatencyRecorder()
            for trial in range(trials):
                run(trial, recorder)
            return float(np.median(recorder.samples))
        finally:
            gc.enable()

    for dimension in DIMENSIONS:
        velox = build_uncached(dimension)
        means: dict[int, float] = {}
        for size in ITEMSET_SIZES:
            itemsets = make_itemsets(size, trials)

            def run(trial, recorder, velox=velox, itemsets=itemsets):
                with recorder.time():
                    velox.top_k(None, 3, itemsets[trial], k=1)

            means[size] = measure(run)
        series[dimension] = means
        del velox
        gc.collect()  # release this dimension's feature matrix

    cache_means: dict[int, float] = {}
    for size in ITEMSET_SIZES:
        itemset = make_itemsets(size, 1)[0]
        velox = build_cached(CACHE_DIMENSION, itemset, uid=3)

        def run(trial, recorder, velox=velox, itemset=itemset):
            with recorder.time():
                velox.top_k(None, 3, itemset, k=1)

        cache_means[size] = measure(run)
        del velox
        gc.collect()
    series["cache"] = cache_means

    lines = ["items  " + "  ".join(f"d={d}_s" for d in DIMENSIONS) + "  cache_s"]
    for size in ITEMSET_SIZES:
        row = f"{size:<7d}"
        for dimension in DIMENSIONS:
            row += f"{series[dimension][size]:<10.6f}"
        row += f"{cache_means[size]:.6f}"
        lines.append(row)
    write_result("fig4_prediction_latency", lines)

    # Shape: roughly linear growth in itemset size for every dimension.
    for dimension in DIMENSIONS:
        ratio = series[dimension][1000] / series[dimension][250]
        assert 2.0 < ratio < 8.0, (
            f"d={dimension}: 1000/250 latency ratio {ratio:.1f} not ~linear (4)"
        )
    # Shape: bigger models are slower per item.
    assert series[10000][1000] > series[2000][1000]
    # Shape: the warm cache is cheapest, and by a wide margin on the
    # largest model (caching benefit grows with model size).
    assert cache_means[1000] < 0.5 * series[2000][1000]
    assert cache_means[1000] < 0.25 * series[10000][1000]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Latency measurement: per-operation recorders and a timing context.

The benchmark harness records thousands of per-operation latencies and
reports mean ± 95% CI plus percentiles, matching the presentation of the
paper's Figures 3 and 4.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ValidationError
from repro.metrics.errors import mean_confidence_interval


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate statistics over recorded durations."""
    count: int
    mean: float
    ci95: float
    p50: float
    p95: float
    p99: float
    min: float
    max: float


class LatencyRecorder:
    """Accumulates durations (seconds) and summarizes them.

    Thread-safe: concurrent serving workers may share one recorder (or
    keep one each and :meth:`merge` them), so every read and write of the
    sample list happens under a lock — ``summary`` never sees a torn
    append.
    """

    def __init__(self, name: str = "latency"):
        self.name = name
        self._lock = threading.Lock()
        self._samples: list[float] = []

    def record(self, seconds: float) -> None:
        """Append one duration in seconds."""
        if seconds < 0:
            raise ValidationError(f"latency cannot be negative: {seconds}")
        with self._lock:
            self._samples.append(seconds)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    @property
    def samples(self) -> list[float]:
        """A copy of all recorded durations."""
        with self._lock:
            return list(self._samples)

    def reset(self) -> None:
        """Discard every recorded sample."""
        with self._lock:
            self._samples.clear()

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Fold another recorder's samples into this one; returns self.

        Lets each serving worker keep a private recorder on the hot path
        and combine them once at reporting time.
        """
        incoming = other.samples  # copied under other's lock
        with self._lock:
            self._samples.extend(incoming)
        return self

    def time(self) -> "Timer":
        """A context manager recording its elapsed time here."""
        return Timer(self)

    def summary(self) -> LatencySummary:
        """Mean ± 95% CI plus percentiles over all samples."""
        with self._lock:
            samples = list(self._samples)
        if not samples:
            raise ValidationError(f"recorder {self.name!r} has no samples")
        arr = np.asarray(samples, dtype=float)
        mean, ci95 = mean_confidence_interval(arr)
        return LatencySummary(
            count=int(arr.size),
            mean=mean,
            ci95=ci95,
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            min=float(arr.min()),
            max=float(arr.max()),
        )


class Timer:
    """Context manager measuring wall-clock duration.

    Usable standalone (``with Timer() as t: ...; t.elapsed``) or attached
    to a :class:`LatencyRecorder`.
    """

    def __init__(self, recorder: LatencyRecorder | None = None):
        self._recorder = recorder
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        if self._recorder is not None and exc_type is None:
            self._recorder.record(self.elapsed)

"""Ablation: uid-partitioned routing as a load balancer.

Section 5: partitioning W by uid "provides a natural load-balancing
scheme for distributing both serving load and the computational cost of
online updates." This ablation drives an identical mixed workload at
several cluster sizes and reports per-node load spread and how serving
work scales out.

Shape assertions: per-node load is balanced (max/mean close to 1) at
every cluster size, and each node's share of requests shrinks
proportionally as nodes are added.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import ObserveRequest, ZipfItemSampler, generate_request_stream

from conftest import build_mf_serving, write_result

NUM_USERS = 240
REQUESTS = 4800
NODE_COUNTS = [1, 2, 4, 8]


def run_cluster(num_nodes: int) -> dict[str, float]:
    velox = build_mf_serving(
        dimension=34, num_items=400, num_users=NUM_USERS, num_nodes=num_nodes
    )
    sampler = ZipfItemSampler(400, 0.8, rng=5)
    stream = generate_request_stream(
        REQUESTS, NUM_USERS, sampler, observe_fraction=0.2, rng=6
    )
    for request in stream:
        if isinstance(request, ObserveRequest):
            velox.observe(uid=request.uid, x=request.item_id, y=request.label)
        else:
            velox.predict(None, request.uid, request.item_id)
    loads = np.array(
        [
            node.stats.requests_served + node.stats.observations_applied
            for node in velox.cluster.nodes
        ],
        dtype=float,
    )
    return {
        "mean_load": float(loads.mean()),
        "max_load": float(loads.max()),
        "imbalance": float(loads.max() / loads.mean()),
    }


@pytest.mark.parametrize("num_nodes", NODE_COUNTS)
def test_load_balance_cluster(benchmark, num_nodes):
    benchmark.pedantic(run_cluster, args=(num_nodes,), rounds=1, iterations=1)


def test_load_balance_summary(benchmark):
    results = {n: run_cluster(n) for n in NODE_COUNTS}
    lines = ["nodes  mean_load  max_load  imbalance(max/mean)"]
    for n in NODE_COUNTS:
        row = results[n]
        lines.append(
            f"{n:<7d}{row['mean_load']:<11.0f}{row['max_load']:<10.0f}"
            f"{row['imbalance']:.3f}"
        )
    write_result("ablation_load_balance", lines)

    # Shape: per-node work scales down ~linearly with cluster size.
    assert results[8]["mean_load"] == pytest.approx(
        results[1]["mean_load"] / 8, rel=0.01
    )
    # Shape: uid partitioning keeps the hottest node near the mean.
    for n in NODE_COUNTS:
        assert results[n]["imbalance"] < 1.25, (n, results[n])
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

"""Property tests: maintenance schedules and window conservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.clock import SimulatedClock
from repro.core.maintenance import MaintenanceScheduler
from repro.streaming import (
    CollectSink,
    IterableSource,
    Map,
    StreamPipeline,
    TumblingWindowAggregate,
)


class TestScheduleProperties:
    # Intervals/horizons on a 0.25 grid: exactly representable in binary
    # floating point, so "due at exactly k * interval" has no ULP edge
    # cases and the floor-count property is crisp.
    @given(
        interval=st.integers(2, 400).map(lambda n: n * 0.25),
        horizon=st.integers(0, 2000).map(lambda n: n * 0.25),
    )
    @settings(max_examples=60, deadline=None)
    def test_run_count_is_floor_of_horizon_over_interval(self, interval, horizon):
        clock = SimulatedClock()
        scheduler = MaintenanceScheduler(clock)
        runs = []
        scheduler.every(interval, lambda: runs.append(clock.now()), name="t")
        scheduler.run_until(horizon)
        assert len(runs) == int(horizon / interval)
        # runs happen exactly at multiples of the interval
        for index, at in enumerate(runs, start=1):
            assert at == pytest.approx(index * interval)
        assert clock.now() == pytest.approx(horizon)

    @given(
        intervals=st.lists(
            st.integers(4, 200).map(lambda n: n * 0.25), min_size=1, max_size=4
        ),
        horizon=st.integers(0, 800).map(lambda n: n * 0.25),
    )
    @settings(max_examples=40, deadline=None)
    def test_multiple_tasks_each_keep_their_count(self, intervals, horizon):
        clock = SimulatedClock()
        scheduler = MaintenanceScheduler(clock)
        counts = {i: 0 for i in range(len(intervals))}

        def bump(i):
            counts[i] += 1

        for i, interval in enumerate(intervals):
            scheduler.every(interval, lambda i=i: bump(i), name=f"t{i}")
        scheduler.run_until(horizon)
        for i, interval in enumerate(intervals):
            assert counts[i] == int(horizon / interval)


class TestWindowConservation:
    @given(
        records=st.lists(
            st.tuples(st.integers(0, 5), st.integers(-10, 10)), max_size=100
        ),
        window_size=st.integers(1, 7),
        batch_size=st.integers(1, 13),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_record_lands_in_exactly_one_window(
        self, records, window_size, batch_size
    ):
        """Sum conservation: per-key sums of window outputs equal the
        per-key sums of the raw input, no matter how batches and window
        boundaries interleave."""
        window = TumblingWindowAggregate(
            key_fn=lambda r: r[0],
            zero=0,
            add=lambda acc, r: acc + r[1],
            window_size=window_size,
        )
        sink = CollectSink()
        StreamPipeline(
            source=IterableSource(records, batch_size=batch_size),
            operators=[window],
            sinks=[sink],
        ).run()
        output_sums: dict[int, int] = {}
        for key, value in sink.records:
            output_sums[key] = output_sums.get(key, 0) + value
        input_sums: dict[int, int] = {}
        for key, value in records:
            input_sums[key] = input_sums.get(key, 0) + value
        assert output_sums == input_sums

    @given(
        count=st.integers(0, 80),
        window_size=st.integers(1, 9),
        batch_size=st.integers(1, 9),
    )
    @settings(max_examples=40, deadline=None)
    def test_single_key_window_counts(self, count, window_size, batch_size):
        window = TumblingWindowAggregate(
            key_fn=lambda r: "k",
            zero=0,
            add=lambda acc, r: acc + 1,
            window_size=window_size,
        )
        sink = CollectSink()
        StreamPipeline(
            source=IterableSource(range(count), batch_size=batch_size),
            operators=[window, Map(lambda kv: kv[1])],
            sinks=[sink],
        ).run()
        full, remainder = divmod(count, window_size)
        expected = [window_size] * full + ([remainder] if remainder else [])
        assert sink.records == expected

"""Ablation: feature-cache hit rate vs item-popularity skew.

Paper Section 5 argues that because item popularity follows a Zipfian
distribution, "caching the hot items on each machine using a simple
cache eviction strategy like LRU will tend to have a high hit rate."
This ablation drives identical request volumes with varying Zipf
exponents through a deliberately small per-node feature cache and
reports hit rates and mean serving latency.

Shape assertions: hit rate increases monotonically with skew, and the
heavily-skewed workload clears a high absolute hit rate.
"""

from __future__ import annotations

import pytest

from repro.metrics import LatencyRecorder
from repro.workloads import ZipfItemSampler

from conftest import build_mf_serving, write_result

NUM_ITEMS = 2000
CACHE_CAPACITY = 200  # 10% of the catalog — misses must happen
REQUESTS = 4000
SKEWS = [0.0, 0.6, 0.9, 1.2]


def run_workload(skew: float) -> tuple[float, float]:
    """Returns (feature cache hit rate, mean predict latency seconds)."""
    velox = build_mf_serving(
        dimension=52,
        num_items=NUM_ITEMS,
        num_users=64,
        num_nodes=1,
        prediction_cache_capacity=0,  # isolate the feature cache
        feature_cache_capacity=CACHE_CAPACITY,
    )
    sampler = ZipfItemSampler(NUM_ITEMS, skew, rng=7)
    recorder = LatencyRecorder()
    for index in range(REQUESTS):
        uid = index % 64
        item = sampler.sample()
        with recorder.time():
            velox.predict(None, uid, item)
    cache = velox.service.feature_caches[0]
    return cache.stats.hit_rate, recorder.summary().mean


@pytest.mark.benchmark(max_time=2.0, min_rounds=1)
@pytest.mark.parametrize("skew", SKEWS)
def test_cache_skew_workload(benchmark, skew):
    benchmark.pedantic(run_workload, args=(skew,), rounds=1, iterations=1)


def test_cache_skew_summary(benchmark):
    results = {skew: run_workload(skew) for skew in SKEWS}
    lines = ["zipf_s  hit_rate  mean_predict_latency_s"]
    for skew in SKEWS:
        hit_rate, latency = results[skew]
        lines.append(f"{skew:<8.1f}{hit_rate:<10.3f}{latency:.6f}")
    write_result("ablation_cache_skew", lines)

    hit_rates = [results[s][0] for s in SKEWS]
    # Shape: monotone in skew.
    assert all(b > a for a, b in zip(hit_rates, hit_rates[1:])), hit_rates
    # Shape: heavy skew achieves a high absolute hit rate despite the
    # cache covering only 10% of the catalog.
    assert hit_rates[-1] > 0.5
    # Shape: the uniform workload is bounded near the capacity fraction.
    assert hit_rates[0] < 0.25
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

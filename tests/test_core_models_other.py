"""Linear, SVM-ensemble, RBF, and MLP feature models."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.core.models import (
    EnsembleSvmModel,
    LinearSvm,
    MlpFeatureModel,
    PersonalizedLinearModel,
    RandomFourierModel,
)
from repro.core.models.svm_ensemble import train_linear_svm
from repro.store import Observation


def make_observations(rng, count=80, dim=4, uid_count=4):
    """Linearly-separable-ish regression data as observations."""
    true_w = rng.normal(size=dim)
    observations = []
    for i in range(count):
        x = rng.normal(size=dim)
        y = float(true_w @ x + 0.05 * rng.normal())
        observations.append(
            Observation(uid=i % uid_count, item_id=-1, label=y, item_data=x)
        )
    return observations


class TestPersonalizedLinearModel:
    def test_features_append_intercept(self):
        model = PersonalizedLinearModel("lin", input_dimension=3)
        f = model.features(np.array([1.0, 2.0, 3.0]))
        assert np.array_equal(f, [1.0, 2.0, 3.0, 1.0])
        assert model.dimension == 4

    def test_shape_checked(self):
        model = PersonalizedLinearModel("lin", 3)
        with pytest.raises(ValidationError):
            model.features(np.zeros(2))

    def test_retrain_solves_users(self, batch_ctx, rng):
        model = PersonalizedLinearModel("lin", 4)
        observations = make_observations(rng)
        new_model, weights = model.retrain(batch_ctx, observations, {})
        assert new_model.version == 1
        # solved weights should fit the shared linear signal well
        for ob in observations[:10]:
            pred = float(weights[ob.uid] @ new_model.features(ob.item_data))
            assert abs(pred - ob.label) < 0.5

    def test_retrain_empty_rejected(self, batch_ctx):
        with pytest.raises(ValidationError):
            PersonalizedLinearModel("lin", 2).retrain(batch_ctx, [], {})


class TestLinearSvmTraining:
    def test_separates_separable_data(self, rng):
        pos = rng.normal(2.0, 0.4, (40, 2))
        neg = rng.normal(-2.0, 0.4, (40, 2))
        features = np.vstack([pos, neg])
        labels = np.concatenate([np.ones(40), -np.ones(40)])
        svm = train_linear_svm(features, labels, epochs=30, seed=1)
        margins = features @ svm.weights + svm.bias
        accuracy = float(np.mean(np.sign(margins) == labels))
        assert accuracy > 0.9

    def test_label_validation(self, rng):
        features = rng.normal(size=(4, 2))
        with pytest.raises(ValidationError):
            train_linear_svm(features, np.array([0.0, 1.0, 1.0, -1.0]))
        with pytest.raises(ValidationError):
            train_linear_svm(features, np.ones(3))


class TestEnsembleSvmModel:
    def test_feature_dimension(self):
        model = EnsembleSvmModel.untrained("svm", input_dimension=3, num_svms=5)
        assert model.dimension == 6  # margins + intercept
        f = model.features(np.zeros(3))
        assert f.shape == (6,)
        assert f[-1] == 1.0

    def test_requires_svms(self):
        with pytest.raises(ValidationError):
            EnsembleSvmModel("svm", [], input_dimension=2)

    def test_svm_shape_consistency_checked(self):
        bad = [LinearSvm(np.zeros(3), 0.0)]
        with pytest.raises(ValidationError):
            EnsembleSvmModel("svm", bad, input_dimension=2)

    def test_retrain_refits_ensemble(self, batch_ctx, rng):
        model = EnsembleSvmModel.untrained("svm", input_dimension=4, num_svms=4)
        observations = make_observations(rng)
        new_model, __ = model.retrain(batch_ctx, observations, {})
        assert new_model.version == 1
        assert len(new_model.svms) == 4
        # the refit SVMs differ from random initialization
        assert not any(
            np.allclose(a.weights, b.weights)
            for a, b in zip(model.svms, new_model.svms)
        )


class TestRandomFourierModel:
    def test_feature_range_and_shape(self, rng):
        model = RandomFourierModel("rbf", input_dimension=3, num_features=32)
        f = model.features(rng.normal(size=3))
        assert f.shape == (33,)
        scale = np.sqrt(2.0 / 32)
        assert np.all(np.abs(f[:-1]) <= scale + 1e-12)

    def test_kernel_approximation(self, rng):
        """Random features approximate the RBF kernel: f(x).f(y) ~ k(x,y)."""
        gamma = 0.5
        model = RandomFourierModel(
            "rbf", input_dimension=2, num_features=4096, gamma=gamma, seed=3
        )
        x, y = rng.normal(size=2), rng.normal(size=2)
        approx = float(model.features(x)[:-1] @ model.features(y)[:-1])
        exact = float(np.exp(-gamma * np.sum((x - y) ** 2)))
        assert abs(approx - exact) < 0.08

    def test_deterministic_given_seed(self):
        a = RandomFourierModel("r", 2, num_features=8, seed=5)
        b = RandomFourierModel("r", 2, num_features=8, seed=5)
        x = np.array([0.3, -0.7])
        assert np.array_equal(a.features(x), b.features(x))

    def test_retrain_resamples_basis(self, batch_ctx, rng):
        model = RandomFourierModel("rbf", input_dimension=4, num_features=16, seed=1)
        observations = make_observations(rng)
        new_model, weights = model.retrain(batch_ctx, observations, {})
        assert new_model.version == 1
        assert not np.array_equal(model.projection, new_model.projection)
        assert set(weights) == {ob.uid for ob in observations}

    def test_validation(self):
        with pytest.raises(ValidationError):
            RandomFourierModel("r", 0)
        with pytest.raises(ValidationError):
            RandomFourierModel("r", 2, num_features=0)
        with pytest.raises(ValidationError):
            RandomFourierModel("r", 2, gamma=0.0)


class TestMlpFeatureModel:
    def test_forward_shape_and_intercept(self, rng):
        model = MlpFeatureModel("mlp", input_dimension=5, hidden_dimension=8)
        f = model.features(rng.normal(size=5))
        assert f.shape == (9,)
        assert f[-1] == 1.0
        assert np.all(np.abs(f[:-1]) <= 1.0)  # tanh range

    def test_shape_checked(self):
        model = MlpFeatureModel("mlp", 3)
        with pytest.raises(ValidationError):
            model.features(np.zeros(4))

    def test_retrain_improves_representation(self, batch_ctx, rng):
        """After representation learning, a linear probe over the features
        should fit the labels better than over random features."""
        model = MlpFeatureModel("mlp", input_dimension=4, hidden_dimension=12, seed=2)
        observations = make_observations(rng, count=150)
        new_model, __ = model.retrain(batch_ctx, observations, {})

        def probe_error(m):
            f_matrix = np.vstack([m.features(ob.item_data) for ob in observations])
            y = np.array([ob.label for ob in observations])
            w = np.linalg.solve(
                f_matrix.T @ f_matrix + 0.01 * np.eye(m.dimension), f_matrix.T @ y
            )
            return float(np.mean((f_matrix @ w - y) ** 2))

        assert probe_error(new_model) < probe_error(model)

    def test_layer_count_enforced(self):
        with pytest.raises(ValidationError):
            MlpFeatureModel("mlp", 3, layers=[(np.zeros((2, 3)), np.zeros(2))])

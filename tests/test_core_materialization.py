"""Materialization strategies: identical answers, different cost shapes."""

import numpy as np
import pytest

from repro.common.errors import ValidationError
from repro.core.materialization import (
    FullPrematerialization,
    HybridCaching,
    OnlineComputation,
)
from repro.core.models import MatrixFactorizationModel


@pytest.fixture
def setup():
    rng = np.random.default_rng(8)
    num_items, rank = 30, 3
    model = MatrixFactorizationModel(
        "m", rng.normal(size=(num_items, rank)), rng.normal(size=num_items), 3.0
    )
    weights = {
        uid: rng.normal(size=model.dimension) for uid in range(10)
    }
    return model, weights, num_items


class TestAnswersAgree:
    def test_all_strategies_serve_identical_scores(self, setup):
        model, weights, num_items = setup
        full = FullPrematerialization(weights, model, num_items)
        online = OnlineComputation(weights, model)
        hybrid = HybridCaching(weights, model, cache_capacity=50)
        full.build()
        online.build()
        hybrid.build()
        rng = np.random.default_rng(1)
        for __ in range(100):
            uid = int(rng.integers(10))
            item = int(rng.integers(num_items))
            a = full.serve(uid, item)
            b = online.serve(uid, item)
            c = hybrid.serve(uid, item)
            assert a == pytest.approx(b) == pytest.approx(c)


class TestCostShapes:
    def test_full_prematerialization_footprint(self, setup):
        model, weights, num_items = setup
        strategy = FullPrematerialization(weights, model, num_items)
        built = strategy.build()
        assert built == 10 * num_items
        assert strategy.storage_entries() == 300
        strategy.serve(0, 0)
        report = strategy.report()
        assert report.computed_on_demand == 0

    def test_full_prematerialization_handles_new_user(self, setup):
        model, weights, num_items = setup
        strategy = FullPrematerialization(weights, model, num_items)
        strategy.build()
        with pytest.raises(ValidationError):
            strategy.serve(999, 0)  # unknown user has no weights at all

    def test_online_computation_zero_storage(self, setup):
        model, weights, __ = setup
        strategy = OnlineComputation(weights, model)
        assert strategy.build() == 0
        for i in range(20):
            strategy.serve(i % 10, i)
        report = strategy.report()
        assert report.storage_entries == 0
        assert report.computed_on_demand == 20

    def test_hybrid_compute_only_on_miss(self, setup):
        model, weights, __ = setup
        strategy = HybridCaching(weights, model, cache_capacity=100)
        strategy.build()
        for __repeat in range(5):
            for item in range(10):
                strategy.serve(0, item)
        report = strategy.report()
        assert report.queries == 50
        assert report.computed_on_demand == 10  # misses only on first pass
        assert report.storage_entries == 10

    def test_hybrid_bounded_by_capacity(self, setup):
        model, weights, num_items = setup
        strategy = HybridCaching(weights, model, cache_capacity=5)
        strategy.build()
        for item in range(num_items):
            strategy.serve(0, item)
        assert strategy.storage_entries() == 5

    def test_requires_users(self, setup):
        model, __, __n = setup
        with pytest.raises(ValidationError):
            OnlineComputation({}, model)

"""Replication & failover: replicated partitions over the veloxstore.

The paper's Velox leans on Tachyon for durability and recovers lost
partitions by lineage replay — a node failure takes its users'
personalized predictions offline until the node restarts. This package
adds the missing serving-availability half: N-way replica placement on
a consistent-hash ring, asynchronous journal shipping from primaries to
followers (bounded lag, snapshot fallback past the compaction horizon),
heartbeat failure detection, and automatic follower promotion so reads
keep succeeding (flagged bounded-stale) through a node loss.
"""

from repro.replication.failure import FailureDetector
from repro.replication.manager import ReplicationManager, USER_NAMESPACE_PREFIX
from repro.replication.replica import PartitionReplica, PromotedPartitionView
from repro.replication.ring import HashRing

__all__ = [
    "FailureDetector",
    "HashRing",
    "PartitionReplica",
    "PromotedPartitionView",
    "ReplicationManager",
    "USER_NAMESPACE_PREFIX",
]

"""Shared benchmark infrastructure.

Each experiment module both (a) exposes pytest-benchmark timings whose
parametrized names form the figure's series, and (b) runs a `_summary`
test that regenerates the paper's table/plot series explicitly, asserts
the *shape* claims from DESIGN.md, and writes the series to
``benchmarks/results/<experiment>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro import Velox, VeloxConfig
from repro.core.models import MatrixFactorizationModel

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, lines: list[str]) -> None:
    """Persist one experiment's series table (and echo it to stdout)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n[{name}]\n{text}")


def build_mf_serving(
    dimension: int,
    num_items: int,
    num_users: int = 64,
    num_nodes: int = 1,
    prediction_cache_capacity: int = 200_000,
    feature_cache_capacity: int = 200_000,
    seed: int = 0,
) -> Velox:
    """A single-process serving deployment with a random MF model of the
    requested *feature* dimension (rank = dimension - 2).

    Figures 3 and 4 sweep `dimension` as the model-complexity axis; the
    factors are random because only compute cost, not accuracy, is being
    measured.
    """
    if dimension < 3:
        raise ValueError("dimension must be >= 3 for the MF layout")
    rng = np.random.default_rng(seed)
    rank = dimension - 2
    model = MatrixFactorizationModel(
        "bench",
        item_factors=rng.normal(0, 0.1, (num_items, rank)),
        item_bias=rng.normal(0, 0.1, num_items),
        global_mean=3.5,
    )
    weights = {
        uid: model.pack_user_weights(rng.normal(0, 0.1, rank), 0.0)
        for uid in range(num_users)
    }
    velox = Velox.deploy(
        VeloxConfig(
            num_nodes=num_nodes,
            prediction_cache_capacity=prediction_cache_capacity,
            feature_cache_capacity=feature_cache_capacity,
        ),
        auto_retrain=False,
    )
    velox.add_model(model, initial_user_weights=weights)
    return velox


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(2025)

"""Fork-based task execution for the sparklite scheduler.

CPython's GIL serializes the CPU-bound ridge solves that dominate ALS
retraining, so the thread-pool executor leaves every core but one idle.
This module runs a stage's tasks in forked worker processes instead:

* ``os.fork`` means task closures (datasets, broadcasts, the scheduler
  itself) need **no pickling** — workers inherit the driver's memory
  copy-on-write, exactly the property that makes fork-per-stage cheap.
* Results travel back over a pipe as **framed pickle-protocol-5
  payloads with out-of-band buffers**: numpy arrays are shipped as raw
  dtype/shape/bytes frames (zero-copy on the encode side) rather than
  through generic pickle byte-stuffing. Buffers at or above
  ``SHM_MIN_BYTES`` move through ``multiprocessing.shared_memory``
  segments so huge factor matrices do not crawl through the pipe.
* Each completed task ships one frame containing its result, its
  captured side effects (accumulator deltas, shuffle writes — see
  ``repro.batch.shared``), its metrics counter deltas, and its wall
  clock. Per-task framing is what makes worker death recoverable: the
  driver knows exactly which partitions landed and re-runs only the
  lost ones via lineage.

A worker that dies mid-stage (injected kill, OOM, hard crash) simply
truncates its frame stream; :func:`run_forked` detects the missing
partitions, consumes any configured kill injection so the retry can
succeed, and re-forks just those partitions, up to the scheduler's
``max_task_attempts``.

Falls back to the caller's thread pool when ``fork`` is unavailable
(``fork_available`` gates the whole path).
"""

from __future__ import annotations

import os
import pickle
import struct
import sys
import time
from threading import Thread

from repro.common.errors import BatchExecutionError, TaskFailedError
from repro.batch.shared import (
    begin_effect_capture,
    end_effect_capture,
    replay_effects,
)

#: Out-of-band buffers at or above this size are shipped through
#: ``multiprocessing.shared_memory`` instead of inline pipe bytes.
#: Tests shrink it to exercise the shared-memory path with small arrays.
SHM_MIN_BYTES = 1 << 20

_FRAME_TASK = 0
_FRAME_END = 1

_BUF_INLINE = 0
_BUF_SHM = 1

_HEADER = struct.Struct("<BIQ")  # kind, num_buffers, body_len
_BUF_HEADER = struct.Struct("<BQ")  # buffer transport, nbytes
_NAME_LEN = struct.Struct("<H")

#: Exit code a worker uses for an injected kill (mirrors SIGKILL's 137).
_KILL_EXIT_CODE = 137


def fork_available() -> bool:
    """Whether this platform supports the fork executor."""
    return hasattr(os, "fork") and sys.platform != "win32"


def _shared_memory_class():
    """The SharedMemory class, or None when unsupported."""
    try:
        from multiprocessing.shared_memory import SharedMemory
    except ImportError:  # pragma: no cover - POSIX images always have it
        return None
    return SharedMemory


# -- frame codec ------------------------------------------------------------


def write_frame(out, kind: int, obj: object, shm_min_bytes: int | None = None) -> None:
    """Serialize ``obj`` as one frame on ``out``.

    Pickle protocol 5 hands us every large contiguous buffer (numpy
    array bodies) out-of-band; those are written raw after the pickle
    body — or placed in a shared-memory segment when large enough — so
    array payloads never pay generic pickle encoding.
    """
    threshold = SHM_MIN_BYTES if shm_min_bytes is None else shm_min_bytes
    buffers: list[pickle.PickleBuffer] = []
    body = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    raws = [buf.raw() for buf in buffers]
    shm_cls = _shared_memory_class()
    out.write(_HEADER.pack(kind, len(raws), len(body)))
    out.write(body)
    for raw in raws:
        if shm_cls is not None and raw.nbytes >= threshold:
            segment = shm_cls(create=True, size=max(1, raw.nbytes))
            segment.buf[: raw.nbytes] = raw
            name = segment.name.encode("ascii")
            out.write(_BUF_HEADER.pack(_BUF_SHM, raw.nbytes))
            out.write(_NAME_LEN.pack(len(name)))
            out.write(name)
            segment.close()  # the reader unlinks after copying out
        else:
            out.write(_BUF_HEADER.pack(_BUF_INLINE, raw.nbytes))
            out.write(raw)


def _read_exact(stream, n: int) -> bytes | None:
    """Read exactly ``n`` bytes, or None on a clean/ truncated EOF."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream) -> tuple[int, object] | None:
    """Read one frame; None if the writer died mid-stream or closed."""
    header = _read_exact(stream, _HEADER.size)
    if header is None:
        return None
    kind, num_buffers, body_len = _HEADER.unpack(header)
    body = _read_exact(stream, body_len)
    if body is None:
        return None
    buffers: list[bytes] = []
    shm_cls = _shared_memory_class()
    for _ in range(num_buffers):
        buf_header = _read_exact(stream, _BUF_HEADER.size)
        if buf_header is None:
            return None
        transport, nbytes = _BUF_HEADER.unpack(buf_header)
        if transport == _BUF_SHM:
            name_len_raw = _read_exact(stream, _NAME_LEN.size)
            if name_len_raw is None:
                return None
            name_raw = _read_exact(stream, _NAME_LEN.unpack(name_len_raw)[0])
            if name_raw is None or shm_cls is None:
                return None
            segment = shm_cls(name=name_raw.decode("ascii"))
            try:
                buffers.append(bytes(segment.buf[:nbytes]))
            finally:
                segment.close()
                segment.unlink()
        else:
            raw = _read_exact(stream, nbytes)
            if raw is None:
                return None
            buffers.append(raw)
    return kind, pickle.loads(body, buffers=buffers)


# -- worker side ------------------------------------------------------------


def _pickle_safe_error(error: BaseException) -> BaseException:
    """The error itself when picklable, else a summarizing stand-in.

    A :class:`TaskFailedError` whose *cause* is the unpicklable part
    keeps its structure (stage/partition/attempts) with the cause
    summarized, so driver-side handling sees the same exception type
    the inline path raises.
    """
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        pass
    if isinstance(error, TaskFailedError):
        return TaskFailedError(
            error.stage,
            error.partition,
            error.attempts,
            _pickle_safe_error(error.cause),
        )
    return BatchExecutionError(
        f"task failed with unpicklable {type(error).__name__}: {error!r}"
    )


def _child_main(task, assigned, write_fd: int, metrics, injector) -> None:
    """Run this worker's partitions and stream one frame per task.

    Runs inside the forked child; never returns (``os._exit`` always,
    so pytest/atexit state inherited from the driver cannot run twice).
    """
    exit_code = 0
    try:
        out = os.fdopen(write_fd, "wb")
        for partition in assigned:
            if injector is not None and injector.should_kill_worker(partition):
                out.flush()
                os._exit(_KILL_EXIT_CODE)
            before = metrics.counters()
            begin_effect_capture()
            start = time.perf_counter()
            try:
                value = task(partition)
                ok = True
            except Exception as error:  # shipped to the driver, raised there
                value = _pickle_safe_error(error)
                ok = False
            seconds = time.perf_counter() - start
            effects = end_effect_capture()
            after = metrics.counters()
            delta = {k: after[k] - before[k] for k in after if after[k] != before[k]}
            write_frame(
                out,
                _FRAME_TASK,
                {
                    "partition": partition,
                    "ok": ok,
                    "value": value,
                    "effects": effects,
                    "metrics": delta,
                    "seconds": seconds,
                },
            )
        write_frame(out, _FRAME_END, None)
        out.flush()
    except BaseException:
        exit_code = 1
    finally:
        os._exit(exit_code)


# -- driver side ------------------------------------------------------------


def _fork_round(task, partitions, num_workers: int, metrics, injector) -> dict:
    """One fork round: returns ``{partition: payload}`` for every task
    whose frame arrived (a dead worker's unfinished partitions are
    simply absent)."""
    pipes: list[tuple[int, int]] = [os.pipe() for _ in range(num_workers)]
    workers: list[tuple[int, int]] = []  # (pid, read_fd)
    for index in range(num_workers):
        read_fd, write_fd = pipes[index]
        pid = os.fork()
        if pid == 0:
            # Child: drop every pipe end that is not ours to write. Ends
            # the parent already closed raise EBADF; ignore them.
            for other_index, (other_read, other_write) in enumerate(pipes):
                for fd in (other_read,) if other_index == index else (other_read, other_write):
                    try:
                        os.close(fd)
                    except OSError:
                        pass
            _child_main(task, partitions[index::num_workers], write_fd, metrics, injector)
        os.close(write_fd)
        workers.append((pid, read_fd))

    payloads: dict[int, dict] = {}
    received: list[list[dict]] = [[] for _ in workers]

    def drain(slot: int, read_fd: int) -> None:
        """Read frames from one worker until END or EOF."""
        with os.fdopen(read_fd, "rb") as stream:
            while True:
                frame = read_frame(stream)
                if frame is None or frame[0] == _FRAME_END:
                    return
                received[slot].append(frame[1])

    readers = [
        Thread(target=drain, args=(slot, read_fd), daemon=True)
        for slot, (_pid, read_fd) in enumerate(workers)
    ]
    for reader in readers:
        reader.start()
    for reader in readers:
        reader.join()
    for pid, _read_fd in workers:
        os.waitpid(pid, 0)
    for frames in received:
        for payload in frames:
            payloads[payload["partition"]] = payload
    return payloads


def run_forked(
    task,
    partitions: list[int],
    num_workers: int,
    *,
    metrics,
    shuffle_store,
    injector=None,
    max_attempts: int = 4,
) -> tuple[list, float]:
    """Run ``task`` over ``partitions`` on forked workers.

    Returns ``(results_in_partition_order, busy_seconds)``. Side effects
    captured in workers are replayed on the driver in partition order,
    so fork execution is observationally deterministic where inline
    execution is. Lost partitions (dead worker) are re-forked up to
    ``max_attempts`` rounds; anything else a task raises is re-raised
    here after the stage's surviving effects have been applied.
    """
    order = list(partitions)
    payloads: dict[int, dict] = {}
    pending = order
    for attempt in range(1, max_attempts + 1):
        round_payloads = _fork_round(
            task, pending, min(num_workers, len(pending)), metrics, injector
        )
        payloads.update(round_payloads)
        lost = [p for p in pending if p not in round_payloads]
        if not lost:
            break
        # Worker death: consume any injected kills so the retry round
        # can succeed, then recompute just the lost partitions.
        metrics.task_retries += len(lost)
        if injector is not None:
            for partition in lost:
                if injector.consume_worker_kill(partition):
                    metrics.injected_failures += 1
        if attempt == max_attempts:
            raise TaskFailedError(
                -1,
                lost[0],
                attempt,
                BatchExecutionError(
                    f"fork worker died; partitions {lost} lost "
                    f"{attempt} time(s)"
                ),
            )
        pending = lost

    busy_seconds = 0.0
    first_error: BaseException | None = None
    for partition in order:
        payload = payloads[partition]
        replay_effects(payload["effects"], shuffle_store, injector)
        metrics.merge_counters(payload["metrics"])
        busy_seconds += payload["seconds"]
        if not payload["ok"] and first_error is None:
            first_error = payload["value"]
    if first_error is not None:
        raise first_error
    return [payloads[partition]["value"] for partition in order], busy_seconds

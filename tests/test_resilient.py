"""Resilience policies: retry backoff + budget, the circuit breaker
state machine, hedging triggers, end-to-end deadline propagation and
pre-compute shedding, the degradation ladder, and the pipelined
client's timed-out slot recovery."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.common.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    DegradedError,
    OverloadedError,
    TransportError,
    ValidationError,
)
from repro.frontend import (
    CircuitBreaker,
    HedgePolicy,
    PipelinedClient,
    PredictApiRequest,
    ResilientClient,
    RetryBudget,
    RetryPolicy,
    TopKApiRequest,
    VeloxServer,
    decode_request,
    encode_request,
    wire,
)
from repro.frontend.api import decode_response
from repro.metrics.resilience import ResilienceMetrics
from repro.serving import ServingConfig


class FakeTime:
    """A settable monotonic time source for breaker tests."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(base_backoff=0.5, max_backoff=0.1)
        with pytest.raises(ValidationError):
            RetryPolicy(jitter=1.5)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_backoff=0.01, multiplier=2.0, max_backoff=0.05, jitter=0.0
        )
        assert policy.backoff(0, 0.0) == pytest.approx(0.01)
        assert policy.backoff(1, 0.0) == pytest.approx(0.02)
        assert policy.backoff(2, 0.0) == pytest.approx(0.04)
        assert policy.backoff(10, 0.0) == pytest.approx(0.05)  # capped

    def test_jitter_only_shrinks(self):
        policy = RetryPolicy(base_backoff=0.1, jitter=0.5)
        raw = policy.backoff(0, 0.0)
        assert policy.backoff(0, 1.0) == pytest.approx(raw * 0.5)
        assert raw * 0.5 <= policy.backoff(0, 0.3) <= raw


class TestRetryBudget:
    def test_validation(self):
        with pytest.raises(ValidationError):
            RetryBudget(ratio=-0.1)
        with pytest.raises(ValidationError):
            RetryBudget(max_tokens=0)

    def test_starts_full_and_drains(self):
        budget = RetryBudget(ratio=0.0, max_tokens=2.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()  # dry: no deposits came in

    def test_deposits_refill_at_ratio_and_cap(self):
        budget = RetryBudget(ratio=0.5, max_tokens=2.0)
        while budget.try_spend():
            pass
        budget.deposit()
        assert not budget.try_spend()  # 0.5 tokens: not a whole retry
        budget.deposit()
        assert budget.try_spend()  # 1.0 accumulated
        for _ in range(100):
            budget.deposit()
        assert budget.tokens == pytest.approx(2.0)  # capped


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeTime()
        metrics = ResilienceMetrics("test")
        breaker = CircuitBreaker(
            "node-0",
            failure_threshold=kwargs.pop("failure_threshold", 3),
            reset_timeout=kwargs.pop("reset_timeout", 1.0),
            time_source=clock,
            metrics=metrics,
        )
        return breaker, clock, metrics

    def test_validation(self):
        with pytest.raises(ValidationError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValidationError):
            CircuitBreaker("x", reset_timeout=0.0)

    def test_trips_after_consecutive_failures_only(self):
        breaker, _, _ = self.make()
        breaker.on_failure()
        breaker.on_failure()
        breaker.on_success()  # resets the consecutive count
        breaker.on_failure()
        breaker.on_failure()
        assert breaker.state == "closed"
        breaker.on_failure()
        assert breaker.state == "open"

    def test_open_rejects_with_retry_after(self):
        breaker, clock, metrics = self.make(reset_timeout=2.0)
        for _ in range(3):
            breaker.on_failure()
        clock.advance(0.5)
        with pytest.raises(CircuitOpenError) as exc:
            breaker.before_call()
        assert exc.value.target == "node-0"
        assert exc.value.retry_after == pytest.approx(1.5)
        assert metrics.snapshot()["breaker_rejections"] == 1

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock, _ = self.make(reset_timeout=1.0)
        for _ in range(3):
            breaker.on_failure()
        clock.advance(1.0)
        assert breaker.state == "half_open"
        breaker.before_call()  # the probe goes through
        with pytest.raises(CircuitOpenError):
            breaker.before_call()  # concurrent caller refused

    def test_probe_success_closes(self):
        breaker, clock, metrics = self.make()
        for _ in range(3):
            breaker.on_failure()
        clock.advance(1.0)
        breaker.before_call()
        breaker.on_success()
        assert breaker.state == "closed"
        breaker.before_call()  # flows freely again
        transitions = metrics.snapshot()["breaker_transitions"]
        assert transitions["node-0:closed->open"] == 1
        assert transitions["node-0:open->half_open"] == 1
        assert transitions["node-0:half_open->closed"] == 1

    def test_probe_failure_reopens_and_restarts_timeout(self):
        breaker, clock, _ = self.make(reset_timeout=1.0)
        for _ in range(3):
            breaker.on_failure()
        clock.advance(1.0)
        breaker.before_call()
        breaker.on_failure()  # the probe failed
        assert breaker.state == "open"
        clock.advance(0.5)
        with pytest.raises(CircuitOpenError):
            breaker.before_call()  # the fresh timeout is still running
        clock.advance(0.5)
        breaker.before_call()  # a new probe slot opened


class TestHedgePolicy:
    def test_validation(self):
        with pytest.raises(ValidationError):
            HedgePolicy(percentile=0.0)
        with pytest.raises(ValidationError):
            HedgePolicy(window=4, min_samples=5)
        with pytest.raises(ValidationError):
            HedgePolicy(max_delay=0.0)

    def test_disabled_until_warm(self):
        policy = HedgePolicy(min_samples=4)
        for _ in range(3):
            policy.observe(0.01)
        assert policy.hedge_delay() is None
        policy.observe(0.01)
        assert policy.hedge_delay() is not None

    def test_delay_tracks_percentile_and_clamps(self):
        policy = HedgePolicy(percentile=50.0, min_samples=4, max_delay=0.05)
        for latency in (0.01, 0.02, 0.03, 0.04):
            policy.observe(latency)
        assert policy.hedge_delay() == pytest.approx(0.025)
        for _ in range(64):
            policy.observe(10.0)  # a disaster window
        assert policy.hedge_delay() == pytest.approx(0.05)  # clamped


class TestDeadlineCodec:
    def test_v2_frame_round_trips_deadline_and_degraded(self):
        request = PredictApiRequest(
            uid=3, item=7, model="songs", deadline=0.25, degraded=True
        )
        frame = wire.encode_request_frame(request, corr_id=1, wire_version=2)
        decoder = wire.FrameDecoder()
        decoder.feed(frame)
        opcode, _, payload = decoder.next_frame()
        decoded = wire.decode_request_payload(opcode, payload)
        assert decoded == request

    def test_v1_frame_omits_and_defaults(self):
        request = TopKApiRequest(
            uid=3, items=(1, 2, 3), k=2, deadline=0.25, degraded=True
        )
        frame = wire.encode_request_frame(request, corr_id=1, wire_version=1)
        decoder = wire.FrameDecoder()
        decoder.feed(frame)
        opcode, _, payload = decoder.next_frame()
        decoded = wire.decode_request_payload(opcode, payload)
        assert decoded.deadline is None and decoded.degraded is False
        assert decoded.items == request.items and decoded.k == request.k

    def test_v1_frames_are_byte_identical_to_before(self):
        plain = PredictApiRequest(uid=3, item=7)
        v1 = wire.encode_request_frame(plain, corr_id=5, wire_version=1)
        v2 = wire.encode_request_frame(plain, corr_id=5, wire_version=2)
        assert len(v2) > len(v1)  # v2 always writes the trailing fields

    def test_json_round_trips_deadline_and_degraded(self):
        request = TopKApiRequest(
            uid=3, items=(1, 2), k=2, deadline=0.125, degraded=True
        )
        assert decode_request(encode_request(request)) == request
        plain = PredictApiRequest(uid=1, item=2)
        line = encode_request(plain)
        assert "deadline" not in line and "degraded" not in line
        assert decode_request(line) == plain


@pytest.fixture
def engine(deployed_velox):
    engine = deployed_velox.serving_engine(
        ServingConfig(num_workers=2, batching="adaptive", slo_p99=1.0)
    )
    engine.start()
    try:
        yield engine
    finally:
        engine.stop()


class TestEngineDeadlines:
    def test_generous_deadline_serves_normally(self, deployed_velox, engine):
        result = engine.predict(3, 5, deadline=30.0, timeout=5.0)
        expected = deployed_velox.service.predict("songs", 3, 5).score
        assert result.score == pytest.approx(expected, abs=1e-9)
        assert engine.resilience.deadline_sheds == 0

    def test_spent_budget_sheds_at_admission(self, engine):
        with pytest.raises(DeadlineExceededError, match="admission"):
            engine.submit_predict(3, 5, deadline=0.0)
        snapshot = engine.resilience.snapshot()
        assert snapshot["deadline_sheds"] == {"admission": 1}

    def test_sheds_never_happen_post_compute(self, deployed_velox, engine):
        """Whatever mix of outcomes a tight-deadline burst produces,
        every shed stage is pre-compute, and every request either
        errors with DeadlineExceededError or completes correctly."""
        futures = [
            engine.submit_predict(uid, uid % 7, deadline=0.002)
            for uid in range(40)
        ]
        served, shed = 0, 0
        for uid, future in enumerate(futures):
            try:
                result = future.result(timeout=5.0)
            except DeadlineExceededError:
                shed += 1
            else:
                served += 1
                expected = deployed_velox.service.predict(
                    "songs", uid, uid % 7
                ).score
                assert result.score == pytest.approx(expected, abs=1e-9)
        assert served + shed == 40
        stages = set(engine.resilience.snapshot()["deadline_sheds"])
        assert stages <= {"admission", "queue", "pre-compute"}

    def test_deadline_error_envelope_over_wire(self, deployed_velox, engine):
        with VeloxServer(deployed_velox, engine=engine) as server:
            with PipelinedClient(server.host, server.port) as client:
                assert client.wire_version == 2
                response = client.call(
                    PredictApiRequest(uid=3, item=5, deadline=0.0),
                    timeout=5.0,
                )
        assert not response.ok
        assert response.error.startswith("DeadlineExceededError")
        assert engine.resilience.deadline_sheds >= 1


class TestDegradedLadderRung:
    def test_cache_hit_serves_degraded(self, deployed_velox, engine):
        with VeloxServer(deployed_velox, engine=engine) as server:
            with PipelinedClient(server.host, server.port) as client:
                warm = client.call(
                    PredictApiRequest(uid=3, item=5), timeout=5.0
                )
                assert warm.ok
                degraded = client.call(
                    PredictApiRequest(uid=3, item=5, degraded=True),
                    timeout=5.0,
                )
        assert degraded.ok
        assert degraded.payload["degraded"] is True
        assert degraded.payload["score"] == pytest.approx(
            warm.payload["score"], abs=1e-9
        )
        assert engine.resilience.snapshot()["degraded"].get("cached", 0) >= 1

    def test_cold_cache_is_typed_bottom(self, deployed_velox, engine):
        with VeloxServer(deployed_velox, engine=engine) as server:
            with PipelinedClient(server.host, server.port) as client:
                response = client.call(
                    PredictApiRequest(uid=3, item=113, degraded=True),
                    timeout=5.0,
                )
        assert not response.ok
        assert response.error.startswith("DegradedError")


class _SilentServer:
    """Accepts one protocol hello, then swallows requests.

    ``responses`` (JSON mode) are lines sent on demand via
    :meth:`send_lines` — the tooling for tombstone/FIFO tests.
    """

    def __init__(self, binary: bool):
        self.binary = binary
        self._listen = socket.create_server(("127.0.0.1", 0))
        self.port = self._listen.getsockname()[1]
        self._conn: socket.socket | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        conn, _ = self._listen.accept()
        self._conn = conn
        if self.binary:
            hello = b""
            while not hello.endswith(b"\n"):
                hello += conn.recv(1)
            conn.sendall(hello)  # echo: negotiation succeeds
        self._ready.set()
        # Drain and ignore whatever arrives.
        try:
            while conn.recv(4096):
                pass
        except OSError:
            pass

    def send_lines(self, lines: list[bytes]) -> None:
        self._ready.wait(5.0)
        for line in lines:
            self._conn.sendall(line)

    def close(self) -> None:
        for sock in (self._conn, self._listen):
            try:
                if sock is not None:
                    sock.close()
            except OSError:
                pass


class TestTimedOutSlotRecovery:
    def test_binary_timeout_releases_window_slot(self):
        server = _SilentServer(binary=True)
        try:
            client = PipelinedClient(
                "127.0.0.1",
                server.port,
                timeout=0.2,
                max_inflight=1,
                block_on_full=False,
            )
            try:
                assert client.protocol == "binary"
                with pytest.raises(TransportError, match="no response"):
                    client.call(PredictApiRequest(uid=1, item=2))
                assert client.timed_out == 1
                assert client.in_flight == 0
                # The window recovered: this call must reserve the slot
                # cleanly — not raise OverloadedError (the leaked-slot
                # failure mode) — and time out on its own terms.
                with pytest.raises(TransportError, match="no response"):
                    client.call(PredictApiRequest(uid=1, item=3))
                assert client.timed_out == 2
                assert client.in_flight == 0
            finally:
                client.close()
        finally:
            server.close()

    def test_json_timeout_tombstones_but_keeps_fifo_order(self):
        server = _SilentServer(binary=False)
        try:
            client = PipelinedClient(
                "127.0.0.1",
                server.port,
                timeout=0.3,
                prefer_binary=False,
                max_inflight=2,
            )
            try:
                assert client.protocol == "json"
                with pytest.raises(TransportError, match="no response"):
                    client.call(PredictApiRequest(uid=1, item=2))
                assert client.timed_out == 1
                assert client.in_flight == 0
                second = client.submit(PredictApiRequest(uid=1, item=3))
                # Two responses arrive: the first matches the abandoned
                # call (discarded), the second matches the live one.
                server.send_lines(
                    [
                        b'{"ok": false, "error": "stale answer"}\n',
                        b'{"ok": true, "payload": {"marker": 7}}\n',
                    ]
                )
                response = second.result(timeout=5.0)
                assert response.ok and response.payload["marker"] == 7
            finally:
                client.close()
        finally:
            server.close()


class TestResilientClient:
    def test_plain_predict_succeeds(self, deployed_velox, engine):
        with VeloxServer(deployed_velox, engine=engine) as server:
            with ResilientClient([(server.host, server.port)]) as client:
                response = client.predict(uid=3, item=5, deadline=10.0)
        assert response.ok
        expected = deployed_velox.service.predict("songs", 3, 5).score
        assert response.payload["score"] == pytest.approx(expected, abs=1e-9)
        assert client.metrics.retries == 0

    def test_retry_rides_over_a_dead_endpoint(self, deployed_velox, engine):
        dead = socket.create_server(("127.0.0.1", 0))
        dead_port = dead.getsockname()[1]
        dead.close()  # nothing listens here any more
        with VeloxServer(deployed_velox, engine=engine) as server:
            with ResilientClient(
                [("127.0.0.1", dead_port), (server.host, server.port)],
                timeout=3.0,
                retry=RetryPolicy(max_attempts=3, base_backoff=0.001),
            ) as client:
                response = client.predict(uid=3, item=5)
        assert response.ok
        assert client.metrics.retries >= 1

    def test_breaker_opens_on_dead_endpoint(self):
        dead = socket.create_server(("127.0.0.1", 0))
        dead_port = dead.getsockname()[1]
        dead.close()
        with ResilientClient(
            [("127.0.0.1", dead_port)],
            timeout=0.5,
            retry=RetryPolicy(max_attempts=4, base_backoff=0.001),
            breaker_threshold=2,
            degrade=False,
        ) as client:
            with pytest.raises(DegradedError):
                client.predict(uid=1, item=2)
            states = client.breaker_states()
            assert states[f"127.0.0.1:{dead_port}"] in ("open", "half_open")
            snapshot = client.metrics.snapshot()
            assert any(
                key.endswith("closed->open")
                for key in snapshot["breaker_transitions"]
            )

    def test_non_retryable_error_returned_verbatim(
        self, deployed_velox, engine
    ):
        with VeloxServer(deployed_velox, engine=engine) as server:
            with ResilientClient([(server.host, server.port)]) as client:
                response = client.predict(uid=3, item="no-such-item")
        assert not response.ok
        assert not response.error.startswith(
            ("OverloadedError", "DeadlineExceededError")
        )
        assert client.metrics.retries == 0

    def test_ladder_degrades_to_cache_under_impossible_deadline(
        self, deployed_velox, engine
    ):
        """Every fresh attempt is shed server-side (deadline already
        spent), so the client walks the ladder and answers from the
        prediction cache — response flagged degraded, zero errors."""
        with VeloxServer(deployed_velox, engine=engine) as server:
            with ResilientClient(
                [(server.host, server.port)],
                retry=RetryPolicy(max_attempts=2, base_backoff=0.001),
            ) as client:
                warm = client.predict(uid=3, item=5)  # populates the cache
                assert warm.ok
                degraded = client.predict(uid=3, item=5, deadline=0.0)
        assert degraded.ok
        assert degraded.payload["degraded"] is True
        assert degraded.payload["score"] == pytest.approx(
            warm.payload["score"], abs=1e-9
        )
        assert client.metrics.snapshot()["degraded"].get("cached", 0) >= 1

    def test_ladder_bottom_is_typed(self, deployed_velox, engine):
        """Cold cache + impossible deadline: every rung fails and the
        client raises the typed DegradedError, not a transport error."""
        with VeloxServer(deployed_velox, engine=engine) as server:
            with ResilientClient(
                [(server.host, server.port)],
                retry=RetryPolicy(max_attempts=2, base_backoff=0.001),
            ) as client:
                with pytest.raises(DegradedError):
                    client.predict(uid=3, item=101, deadline=0.0)
        assert client.metrics.snapshot()["degraded"].get("error", 0) >= 1

    def test_writes_never_retry(self, deployed_velox, engine):
        dead = socket.create_server(("127.0.0.1", 0))
        dead_port = dead.getsockname()[1]
        dead.close()
        from repro.frontend import ObserveApiRequest

        with ResilientClient(
            [("127.0.0.1", dead_port)],
            timeout=0.5,
            retry=RetryPolicy(max_attempts=4, base_backoff=0.001),
            degrade=True,
        ) as client:
            with pytest.raises(DegradedError):
                client.write(
                    ObserveApiRequest(uid=1, item=2, label=1.0)
                )
        assert client.metrics.retries == 0

    def test_hedge_launches_and_wins_on_stalled_primary(
        self, deployed_velox, engine
    ):
        """Prime the hedge window with fast calls, then stall the
        primary's responses via a chaos write stall on one endpoint:
        the hedge fires against the second endpoint and wins."""
        from repro import chaos
        from repro.chaos import ChaosInjector, FaultRule, FaultSchedule

        with VeloxServer(deployed_velox, engine=engine) as primary, \
                VeloxServer(deployed_velox, engine=engine) as backup:
            with ResilientClient(
                [
                    (primary.host, primary.port),
                    (backup.host, backup.port),
                ],
                pool_size=1,
                hedge=HedgePolicy(
                    percentile=95.0, min_samples=8, max_delay=0.2
                ),
            ) as client:
                for _ in range(10):
                    assert client.predict(uid=3, item=5).ok
                schedule = FaultSchedule(
                    [
                        FaultRule(
                            "wire.delay_response",
                            probability=1.0,
                            magnitude=0.8,
                        )
                    ],
                    seed=1,
                )
                injector = ChaosInjector(schedule)
                # Chaos is process-wide; with max_faults unbounded the
                # delay hits whichever server answers first (the
                # primary), and the hedge path pays it at most once
                # more — the winner is whoever clears first.
                with chaos.installed(injector):
                    response = client.predict(uid=3, item=5)
                assert response.ok
        assert client.metrics.hedges_launched >= 1

"""End-to-end replication: a replicated Velox deployment losing a node.

The scenarios the ablation (benchmarks/test_ablation_replication.py)
measures, asserted deterministically here: automatic follower promotion
(via the read-failure fast path and via the heartbeat loop), stale-read
flagging, writes during failover, and restart reconvergence.
"""

from __future__ import annotations

import time

import pytest

from repro import Velox, VeloxConfig
from repro.common.errors import ConfigError
from repro.replication import ReplicationManager
from tests.conftest import make_initial_weights, make_mf_model


def deploy_replicated(trained_als, **extra) -> Velox:
    model = make_mf_model(trained_als)
    weights = make_initial_weights(model, trained_als)
    velox = Velox.deploy(
        VeloxConfig(num_nodes=4, replication_factor=2, extra=extra),
        auto_retrain=False,
    )
    velox.add_model(model, initial_user_weights=weights)
    return velox


@pytest.fixture
def replicated(trained_als):
    """rf=2 on 4 nodes, heartbeat loop stopped so tests drive failover
    deterministically through the read-failure fast path."""
    velox = deploy_replicated(trained_als)
    velox.shutdown()
    yield velox
    velox.shutdown()


class TestDeployment:
    def test_config_bounds_replication_factor(self):
        with pytest.raises(ConfigError):
            VeloxConfig(num_nodes=2, replication_factor=3)
        with pytest.raises(ConfigError):
            VeloxConfig(replication_factor=0)

    def test_rf1_deploys_without_replication(self, deployed_velox):
        assert deployed_velox.replication is None

    def test_rf2_attaches_manager_everywhere(self, replicated):
        manager = replicated.replication
        assert isinstance(manager, ReplicationManager)
        assert replicated.cluster.replication is manager
        assert replicated.cluster.router.replication is manager

    def test_user_state_table_is_replicated(self, replicated):
        replicated_tables = {t for t, _ in
                             replicated.replication.replicated_partitions()}
        assert "user_state:songs" in replicated_tables

    def test_router_exposes_replica_sets(self, replicated):
        replica_set = replicated.cluster.router.replica_set(uid=1)
        assert replica_set[0] == 1  # primary = owner
        assert len(replica_set) == 2
        assert len(set(replica_set)) == 2


class TestFailoverServing:
    def test_read_failure_fast_path_promotes_and_serves(self, replicated):
        """Killing the owner mid-traffic: the very next read for its
        users succeeds via a freshly promoted follower — no heartbeat
        round needed, identical score, not stale (fully shipped)."""
        uid = 1  # owned by node 1 (modulo placement)
        replicated.replication.ship()
        before = replicated.predict_detailed(None, uid, 3)
        replicated.cluster.fail_node(1)
        after = replicated.predict_detailed(None, uid, 3)
        assert after.score == pytest.approx(before.score, abs=1e-12)
        assert after.stale is False
        serving = replicated.replication.serving_node_for_user_partition(1)
        assert serving is not None and serving != 1
        assert after.node_id == serving
        assert replicated.replication.metrics.failover_count == 1

    def test_unshipped_promotion_flags_reads_stale(self, replicated):
        """When the primary dies before shipping its journal, follower
        reads still succeed but carry the bounded-staleness flag."""
        uid = 1
        assert replicated.replication.max_lag() > 0  # nothing shipped yet
        replicated.cluster.fail_node(1)
        result = replicated.predict_detailed(None, uid, 3)
        assert result.stale is True
        # Healthy users are untouched by the failover.
        assert replicated.predict_detailed(None, 2, 3).stale is False

    def test_unrelated_users_unaffected_by_node_loss(self, replicated):
        replicated.replication.ship()
        before = replicated.predict_detailed(None, 2, 7)
        replicated.cluster.fail_node(1)
        after = replicated.predict_detailed(None, 2, 7)
        assert after.score == pytest.approx(before.score, abs=1e-12)
        assert after.node_id == 2

    def test_top_k_during_failover(self, replicated):
        replicated.replication.ship()
        expected = replicated.top_k(None, 1, [1, 2, 3, 4], k=2)
        replicated.cluster.fail_node(1)
        assert replicated.top_k(None, 1, [1, 2, 3, 4], k=2) == expected

    def test_observe_during_failover_and_reconvergence(self, replicated):
        """Online updates keep flowing while the owner is down (journal-
        first through the promoted view); restarting the owner replays
        them, demotes the stand-in, and reads drop the stale flag."""
        uid = 1
        replicated.replication.ship()
        replicated.cluster.fail_node(1)
        replicated.predict_detailed(None, uid, 3)  # triggers promotion
        result = replicated.observe(uid=uid, x=3, y=4.0)
        assert result.loss >= 0.0  # the update went through
        during = replicated.predict_detailed(None, uid, 3)
        replayed = replicated.cluster.restart_node(1)
        assert replayed > 0
        after = replicated.predict_detailed(None, uid, 3)
        assert after.node_id == 1  # owner serves again
        assert after.stale is False
        assert after.score == pytest.approx(during.score, abs=1e-9)
        assert (
            replicated.replication.serving_node_for_user_partition(1) is None
        )

    def test_heartbeat_loop_promotes_without_any_read(self, trained_als):
        """Pure heartbeat detection: no request touches the dead node,
        yet its partitions get promoted within a few intervals."""
        velox = deploy_replicated(
            trained_als,
            replication_heartbeat_interval=0.01,
            replication_heartbeat_timeout=0.05,
        )
        try:
            velox.replication.ship()
            velox.cluster.fail_node(1)
            deadline = time.time() + 2.0
            while time.time() < deadline:
                if velox.replication.serving_node_for_user_partition(1) is not None:
                    break
                time.sleep(0.01)
            serving = velox.replication.serving_node_for_user_partition(1)
            assert serving is not None and serving != 1
            result = velox.predict_detailed(None, 1, 3)
            assert result.stale is False
        finally:
            velox.shutdown()

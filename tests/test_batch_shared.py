"""Broadcasts, accumulators, and checkpointing."""

import pytest

from repro.batch import Accumulator, BatchContext, Broadcast
from repro.common.errors import BatchExecutionError


@pytest.fixture
def ctx():
    return BatchContext(default_parallelism=3)


class TestBroadcast:
    def test_value_visible_in_tasks(self, ctx):
        lookup = ctx.broadcast({1: "a", 2: "b"})
        result = ctx.parallelize([1, 2, 1], 2).map(lambda k: lookup.value[k]).collect()
        assert result == ["a", "b", "a"]

    def test_unpersist_poisons_access(self, ctx):
        handle = ctx.broadcast([1, 2, 3])
        handle.unpersist()
        with pytest.raises(BatchExecutionError):
            __ = handle.value

    def test_use_after_unpersist_fails_inside_job(self, ctx):
        handle = ctx.broadcast(10)
        handle.unpersist()
        from repro.common.errors import TaskFailedError

        with pytest.raises(TaskFailedError):
            ctx.parallelize([1], 1).map(lambda x: x + handle.value).collect()

    def test_ids_are_unique(self, ctx):
        assert ctx.broadcast(1).broadcast_id != ctx.broadcast(2).broadcast_id


class TestAccumulator:
    def test_sums_across_tasks(self, ctx):
        counter = ctx.accumulator(0)
        ctx.parallelize(range(100), 5).foreach(lambda x: counter.add(1))
        assert counter.value == 100

    def test_custom_merge(self, ctx):
        collector = ctx.accumulator([], merge_fn=lambda a, b: a + [b])
        ctx.parallelize([3, 1, 2], 3).foreach(collector.add)
        assert sorted(collector.value) == [1, 2, 3]

    def test_thread_safe_under_parallel_scheduler(self):
        ctx = BatchContext(default_parallelism=4)
        counter = ctx.accumulator(0)
        ctx.parallelize(range(2000), 8).foreach(lambda x: counter.add(1))
        assert counter.value == 2000

    def test_accumulates_across_jobs(self, ctx):
        counter = ctx.accumulator(0)
        ds = ctx.parallelize(range(10), 2)
        ds.foreach(lambda x: counter.add(x))
        ds.foreach(lambda x: counter.add(x))
        assert counter.value == 90


class TestSaveToTable:
    def test_writes_pairs_to_store(self, ctx):
        from repro.store import VeloxStore

        store = VeloxStore(default_partitions=2)
        table = store.create_table("weights")
        pairs = ctx.parallelize([(i, i * 10) for i in range(20)], 4)
        written = pairs.save_to_table(table)
        assert written == 20
        assert table.get(7) == 70
        assert len(table) == 20

    def test_writes_are_journaled(self, ctx):
        from repro.store import VeloxStore

        store = VeloxStore(default_partitions=2)
        table = store.create_table("weights", partitioner=lambda k: k % 2)
        ctx.parallelize([(i, i) for i in range(10)], 3).save_to_table(table)
        table.fail_partition(0)
        table.recover_partition(0)
        assert table.get(4) == 4

    def test_threaded_writes(self):
        from repro.store import VeloxStore

        ctx = BatchContext(default_parallelism=4)
        store = VeloxStore(default_partitions=4)
        table = store.create_table("t")
        count = ctx.parallelize([(i, i) for i in range(500)], 8).save_to_table(table)
        assert count == 500
        assert len(table) == 500


class TestEffectCapture:
    """The capture/replay protocol the fork executor ships deltas with."""

    def test_accumulator_adds_recorded(self, ctx):
        from repro.batch.shared import begin_effect_capture, end_effect_capture

        counter = ctx.accumulator(0)
        begin_effect_capture()
        counter.add(3)
        counter.add(4)
        effects = end_effect_capture()
        assert effects.accumulator_adds == [
            (counter._registry_id, 3),
            (counter._registry_id, 4),
        ]

    def test_replay_applies_deltas_to_live_accumulator(self, ctx):
        from repro.batch.shared import TaskEffects, replay_effects
        from repro.batch.shuffle import ShuffleStore

        counter = ctx.accumulator(0)
        effects = TaskEffects(
            accumulator_adds=[(counter._registry_id, 5), (counter._registry_id, 2)]
        )
        replay_effects(effects, ShuffleStore())
        assert counter.value == 7

    def test_replay_skips_dead_accumulators(self, ctx):
        # A worker may ship a delta for an accumulator the driver has
        # already dropped; replay must not crash.
        from repro.batch.shared import TaskEffects, replay_effects
        from repro.batch.shuffle import ShuffleStore

        counter = ctx.accumulator(0)
        dead_id = counter._registry_id
        del counter
        replay_effects(
            TaskEffects(accumulator_adds=[(dead_id, 1)]), ShuffleStore()
        )  # no live target: silently dropped

    def test_shuffle_writes_recorded_and_replayed(self):
        from repro.batch.shared import begin_effect_capture, end_effect_capture, replay_effects
        from repro.batch.shuffle import ShuffleStore

        capture_store = ShuffleStore()
        begin_effect_capture()
        capture_store.write(9, 0, [[(1, "a")], [(2, "b")]])
        effects = end_effect_capture()
        assert effects.shuffle_writes == [(9, 0, [[(1, "a")], [(2, "b")]])]

        driver_store = ShuffleStore()
        replay_effects(effects, driver_store)
        assert driver_store.fetch(9, 0, 0) == [(1, "a")]
        assert driver_store.fetch(9, 0, 1) == [(2, "b")]

    def test_end_without_begin_raises(self):
        from repro.batch.shared import end_effect_capture

        with pytest.raises(BatchExecutionError):
            end_effect_capture()

    def test_no_capture_outside_workers(self, ctx):
        from repro.batch.shared import active_effects

        assert active_effects() is None
        counter = ctx.accumulator(0)
        counter.add(1)  # plain driver-side add, nothing recorded
        assert active_effects() is None
        assert counter.value == 1


class TestCheckpoint:
    def test_checkpoint_preserves_data(self, ctx):
        ds = ctx.parallelize(range(20), 4).map(lambda x: x * 2)
        checkpointed = ctx.checkpoint(ds)
        assert checkpointed.collect() == ds.collect()
        assert checkpointed.num_partitions == 4

    def test_checkpoint_severs_lineage(self, ctx):
        calls = []
        ds = ctx.parallelize(range(5), 1).map(lambda x: calls.append(x) or x)
        checkpointed = ctx.checkpoint(ds)
        checkpointed.collect()
        checkpointed.collect()
        assert len(calls) == 5  # the map ran only during checkpointing
        assert checkpointed.dependencies == []

    def test_checkpoint_through_shuffle(self, ctx):
        pairs = ctx.parallelize([(i % 3, 1) for i in range(12)], 3)
        reduced = pairs.reduce_by_key(lambda a, b: a + b)
        checkpointed = ctx.checkpoint(reduced)
        assert checkpointed.collect_as_map() == {0: 4, 1: 4, 2: 4}
